// Package obs is the repository's self-telemetry layer: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms with quantile estimation) plus a Span timer helper.
//
// The paper's whole methodology is measurement — VTune Top-down slots and
// perf counters over an 816-point sweep — and obs applies the same
// discipline to the harness itself: the exec pool, the singleflight decode
// caches and the sweep engine all record what they did, and the numbers
// surface three ways: the expvar/pprof debug endpoint (-debug-addr), the
// end-of-run JSON manifest (-metrics-out), and the -progress summary line.
//
// Everything is safe for concurrent use; the hot-path cost of a counter is
// one atomic add, and a histogram observation is two atomic adds plus a
// CAS-bounded min/max update.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a last-value-wins atomic gauge.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: bucket i covers
// (bound(i-1), bound(i)] with bound(i) = 1024ns << i, so the range runs
// from ~1µs to ~9.5 hours before the unbounded overflow bucket. The bounds
// are fixed (no per-histogram configuration) so that every histogram in a
// snapshot is directly comparable and merging never re-buckets.
const histBuckets = 36

// histBound returns the inclusive upper bound of bucket i in nanoseconds.
func histBound(i int) int64 { return 1024 << uint(i) }

// Histogram is a fixed-bucket latency histogram over int64 nanosecond
// observations (any int64 unit works, but the bucket layout is tuned for
// durations). It tracks count, sum, min and max exactly and estimates
// quantiles by linear interpolation inside the landing bucket. Always
// construct with NewHistogram (or through a Registry): the min/max
// trackers need sentinel initialization.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64 // +1: overflow
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // MaxInt64 until the first observation
	max     atomic.Int64 // MinInt64 until the first observation
}

// NewHistogram returns an empty histogram ready for observations.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < histBuckets && v > histBound(i) {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Start opens a Span that will record its elapsed time into h on End.
func (h *Histogram) Start() Span { return Span{h: h, start: time.Now()} }

// Span is a lightweight in-flight timer: obtain one with Histogram.Start,
// call End exactly once when the spanned work finishes.
type Span struct {
	h     *Histogram
	start time.Time
}

// End records the elapsed time and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.h != nil {
		s.h.Observe(int64(d))
	}
	return d
}

// Registry is a namespace of metrics. The zero value is not usable; use
// NewRegistry or the package Default. Metric accessors get-or-create, so
// instrumentation sites need no registration ceremony.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every built-in instrumentation
// site records into (one process is one run for all six cmds).
func Default() *Registry { return defaultRegistry }

// Key renders a metric name plus label pairs into the canonical snapshot
// key: name{k1=v1,k2=v2}. Labels are sorted by key so the same label set
// always produces the same metric.
func Key(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("obs: Key needs key/value label pairs")
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+"="+labels[i+1])
	}
	sort.Strings(pairs)
	return name + "{" + strings.Join(pairs, ",") + "}"
}

// Counter returns the named counter, creating it on first use. Optional
// trailing arguments are label key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	k := Key(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	k := Key(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	k := Key(name, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[k]
	if h == nil {
		h = NewHistogram()
		r.hists[k] = h
	}
	return h
}

// Reset drops every metric. Intended for tests; production code snapshots
// instead of resetting so concurrent writers never lose a metric object.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
}

// Bucket is one non-empty histogram bucket in a snapshot: Count values
// landed at or below Le nanoseconds (Le < 0 marks the overflow bucket).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P95     int64    `json:"p95"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON: map
// keys are the canonical metric keys (encoding/json emits map keys
// sorted, so serialization is stable for a stable metric set).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current values. Writers may race with
// the copy — each metric is read atomically, so every value in the result
// was true at some instant during the call.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Load()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Load()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// snapshot freezes one histogram, estimating p50/p95/p99 from the bucket
// counts it read (not from the live histogram, so the quantiles are
// consistent with the reported buckets even under concurrent writers).
func (h *Histogram) snapshot() HistogramSnapshot {
	var counts [histBuckets + 1]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, Sum: h.sum.Load()}
	if total == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	for i, c := range counts {
		if c == 0 {
			continue
		}
		le := int64(-1)
		if i < histBuckets {
			le = histBound(i)
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: c})
	}
	s.P50 = quantile(counts[:], total, s.Min, s.Max, 0.50)
	s.P95 = quantile(counts[:], total, s.Min, s.Max, 0.95)
	s.P99 = quantile(counts[:], total, s.Min, s.Max, 0.99)
	return s
}

// quantile estimates the q-quantile by walking the cumulative bucket
// counts and interpolating linearly inside the landing bucket, clamped to
// the exact observed [min, max].
func quantile(counts []int64, total int64, min, max int64, q float64) int64 {
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo := int64(0)
			if i > 0 {
				lo = histBound(i - 1)
			}
			hi := max
			if i < histBuckets && histBound(i) < max {
				hi = histBound(i)
			}
			if lo < min {
				lo = min
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			v := float64(lo) + frac*float64(hi-lo)
			return int64(math.Round(v))
		}
		cum = next
	}
	return max
}

// CounterTotal sums every counter whose key equals name or carries name
// with any label set — the cross-label rollup the summary line prints.
func (s Snapshot) CounterTotal(name string) int64 {
	var sum int64
	for k, v := range s.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += v
		}
	}
	return sum
}

// GaugeTotal sums every gauge whose key equals name or carries name with
// any label set — e.g. fleet_worker_busy{worker=...} rolled up to a
// fleet-wide busy count.
func (s Snapshot) GaugeTotal(name string) int64 {
	var sum int64
	for k, v := range s.Gauges {
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += v
		}
	}
	return sum
}

// HistogramByName returns the snapshot of the named histogram (first label
// variant wins when only a labeled form exists) and whether one was found.
func (s Snapshot) HistogramByName(name string) (HistogramSnapshot, bool) {
	if h, ok := s.Histograms[name]; ok {
		return h, true
	}
	keys := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if strings.HasPrefix(k, name+"{") {
			return s.Histograms[k], true
		}
	}
	return HistogramSnapshot{}, false
}

// FmtDuration renders a nanosecond metric value compactly for log lines.
func FmtDuration(ns int64) string {
	return fmt.Sprint(time.Duration(ns).Round(10 * time.Microsecond))
}
