package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// goldenManifest is a fixed manifest used for serialization tests: every
// field is pinned so the JSON layout is deterministic.
func goldenManifest() *Manifest {
	return &Manifest{
		Tool:        "sweep",
		Args:        []string{"-mode", "crf-refs", "-video", "presentation"},
		GitRev:      "0123456789abcdef0123456789abcdef01234567",
		GoVersion:   "go1.22.0",
		Start:       time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		WallSeconds: 1.5,
		Metrics: Snapshot{
			Counters: map[string]int64{"core_cache_hits{cache=mezzanine}": 4},
			Gauges:   map[string]int64{"exec_utilization_pct": 87},
			Histograms: map[string]HistogramSnapshot{
				"core_sweep_point_ns": {
					Count: 2, Sum: 3000, Min: 1000, Max: 2000,
					P50: 1000, P95: 2000, P99: 2000,
					Buckets: []Bucket{{Le: 1024, Count: 1}, {Le: 2048, Count: 1}},
				},
			},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	want := goldenManifest()
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// Write twice: the serialized bytes must be identical (stable key
	// ordering), which is what makes manifests diffable across runs.
	path2 := filepath.Join(dir, "m2.json")
	if err := want.WriteFile(path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Fatalf("manifest serialization not stable:\n%s\n%s", b1, b2)
	}
	// Spot-check the schema fields the bench gate and humans grep for.
	for _, field := range []string{`"tool"`, `"git_rev"`, `"wall_seconds"`, `"metrics"`, `"counters"`} {
		if !strings.Contains(string(b1), field) {
			t.Fatalf("manifest JSON missing %s:\n%s", field, b1)
		}
	}
}

func TestManifestGolden(t *testing.T) {
	data, err := json.MarshalIndent(goldenManifest(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "tool": "sweep",
  "args": [
    "-mode",
    "crf-refs",
    "-video",
    "presentation"
  ],
  "git_rev": "0123456789abcdef0123456789abcdef01234567",
  "go_version": "go1.22.0",
  "start": "2026-08-05T12:00:00Z",
  "wall_seconds": 1.5,
  "metrics": {
    "counters": {
      "core_cache_hits{cache=mezzanine}": 4
    },
    "gauges": {
      "exec_utilization_pct": 87
    },
    "histograms": {
      "core_sweep_point_ns": {
        "count": 2,
        "sum": 3000,
        "min": 1000,
        "max": 2000,
        "p50": 1000,
        "p95": 2000,
        "p99": 2000,
        "buckets": [
          {
            "le": 1024,
            "count": 1
          },
          {
            "le": 2048,
            "count": 1
          }
        ]
      }
    }
  }
}`
	if string(data) != golden {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", data, golden)
	}
}

func TestGitRevFallback(t *testing.T) {
	// A temp dir outside any repository must fall back, not error out.
	dir := t.TempDir()
	if rev := GitRev(dir); rev != GitRevFallback {
		// The only way a temp dir resolves is the machine nesting TMPDIR
		// inside a repo; guard against that rather than fail spuriously.
		if _, err := os.Stat(filepath.Join(dir, ".git")); err != nil && !nestedInRepo(dir) {
			t.Fatalf("GitRev(%s) = %q, want %q", dir, rev, GitRevFallback)
		}
	}
}

// nestedInRepo reports whether some ancestor of dir is a git work tree.
func nestedInRepo(dir string) bool {
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, ".git")); err == nil {
			return true
		}
		if d == filepath.Dir(d) {
			return false
		}
	}
}

func TestNewManifestDefaults(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	start := time.Now().Add(-time.Second)
	m := NewManifest("paper", []string{"-fig", "3"}, start, r)
	if m.Tool != "paper" || len(m.Args) != 2 {
		t.Fatalf("tool/args: %+v", m)
	}
	if m.WallSeconds < 1 {
		t.Fatalf("wall %.3fs, want >= 1s", m.WallSeconds)
	}
	if m.GitRev == "" {
		t.Fatal("git rev empty (fallback missing)")
	}
	if m.GoVersion == "" {
		t.Fatal("go version empty")
	}
	if m.Metrics.Counters["c"] != 1 {
		t.Fatalf("metrics not snapshotted: %+v", m.Metrics)
	}
}
