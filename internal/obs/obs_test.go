package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("jobs").Inc()
				r.Counter("jobs", "kind", "x").Add(2)
				r.Gauge("depth").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("jobs").Load(); got != workers*perWorker {
		t.Fatalf("jobs = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("jobs", "kind", "x").Load(); got != 2*workers*perWorker {
		t.Fatalf("labeled jobs = %d, want %d", got, 2*workers*perWorker)
	}
	s := r.Snapshot()
	if got := s.CounterTotal("jobs"); got != 3*workers*perWorker {
		t.Fatalf("CounterTotal = %d, want %d", got, 3*workers*perWorker)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*perWorker+i+1) * 1000)
			}
		}()
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	if s.Min != 1000 || s.Max != int64(workers*perWorker)*1000 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	var want int64
	for i := 1; i <= workers*perWorker; i++ {
		want += int64(i) * 1000
	}
	if s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// Uniform 1..1000 µs: quantiles should land near the ideal values,
	// within the resolution of the power-of-two buckets (one bucket wide).
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * 1000)
	}
	s := h.snapshot()
	check := func(name string, got, ideal int64) {
		t.Helper()
		if got < ideal/2 || got > ideal*2 {
			t.Fatalf("%s = %d, want within 2x of %d", name, got, ideal)
		}
	}
	check("p50", s.P50, 500_000)
	check("p95", s.P95, 950_000)
	check("p99", s.P99, 990_000)
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: %d %d %d", s.P50, s.P95, s.P99)
	}
	if s.P99 > s.Max {
		t.Fatalf("p99 %d exceeds max %d", s.P99, s.Max)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := NewHistogram()
	h.Observe(5000)
	s := h.snapshot()
	if s.Min != 5000 || s.Max != 5000 {
		t.Fatalf("min/max = %d/%d, want 5000/5000", s.Min, s.Max)
	}
	if s.P50 < 4096 || s.P50 > 5000 {
		t.Fatalf("p50 = %d, want in (4096, 5000]", s.P50)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram()
	huge := int64(1) << 62 // beyond the last bounded bucket
	h.Observe(huge)
	s := h.snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].Le != -1 {
		t.Fatalf("overflow bucket not marked: %+v", s.Buckets)
	}
	if s.P99 != huge {
		t.Fatalf("overflow p99 = %d, want max %d", s.P99, huge)
	}
}

// TestSnapshotStability pins two properties the manifest relies on: a
// snapshot taken with no intervening updates is identical to the previous
// one, and its JSON serialization is byte-stable.
func TestSnapshotStability(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "k", "v").Add(3)
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(1500)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", s1, s2)
	}
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("JSON not stable:\n%s\n%s", j1, j2)
	}
	if want := `"a{k=v}":3`; !contains(string(j1), want) {
		t.Fatalf("labeled counter key missing from %s", j1)
	}
}

// TestSnapshotUnderConcurrentWrites asserts snapshotting never sees a torn
// or decreasing counter while writers run (run with -race).
func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Counter("c").Inc()
				r.Histogram("h").Observe(2000)
			}
		}
	}()
	var last int64
	for i := 0; i < 100; i++ {
		s := r.Snapshot()
		if c := s.Counters["c"]; c < last {
			t.Fatalf("counter went backwards: %d -> %d", last, c)
		} else {
			last = c
		}
	}
	close(stop)
	wg.Wait()
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_ns")
	sp := h.Start()
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Fatalf("span too short: %v", d)
	}
	s := r.Snapshot()
	hs, ok := s.HistogramByName("span_ns")
	if !ok || hs.Count != 1 {
		t.Fatalf("span not recorded: %+v", hs)
	}
	if hs.Min < int64(time.Millisecond) {
		t.Fatalf("recorded span %dns below sleep", hs.Min)
	}
}

func TestKeyLabelOrder(t *testing.T) {
	if Key("m", "b", "2", "a", "1") != "m{a=1,b=2}" {
		t.Fatalf("Key label ordering: %s", Key("m", "b", "2", "a", "1"))
	}
	if Key("m") != "m" {
		t.Fatal("bare key altered")
	}
}

func TestHistogramByNameLabeled(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_ns", "stage", "warm").Observe(100)
	if _, ok := r.Snapshot().HistogramByName("lat_ns"); !ok {
		t.Fatal("labeled histogram not found by base name")
	}
	if _, ok := r.Snapshot().HistogramByName("nope"); ok {
		t.Fatal("found a histogram that does not exist")
	}
}

func TestGaugeTotal(t *testing.T) {
	r := NewRegistry()
	r.Gauge("busy", "worker", "w1").Set(1)
	r.Gauge("busy", "worker", "w2").Set(1)
	r.Gauge("busy", "worker", "w3").Set(0)
	r.Gauge("busywork").Set(9) // shares the prefix but not the name
	s := r.Snapshot()
	if got := s.GaugeTotal("busy"); got != 2 {
		t.Fatalf("GaugeTotal(busy) = %d, want 2", got)
	}
	if got := s.GaugeTotal("busywork"); got != 9 {
		t.Fatalf("GaugeTotal(busywork) = %d, want 9", got)
	}
	if got := s.GaugeTotal("absent"); got != 0 {
		t.Fatalf("GaugeTotal(absent) = %d, want 0", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
