package frame

import (
	"math/rand"
	"testing"
)

// randomPlane fills a plane (padding included) from a seeded generator so
// kernel tests cover reads that extend into the margins.
func randomPlane(w, h int, seed int64) Plane {
	p := NewPlane(w, h)
	rng := rand.New(rand.NewSource(seed))
	for i := range p.Pix {
		p.Pix[i] = uint8(rng.Intn(256))
	}
	return p
}

// TestLaneOpsMatchInt16 pins the carry-masked lane arithmetic against plain
// int16 arithmetic across random lane values, including the extremes.
func TestLaneOpsMatchInt16(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pack := func(v [4]int16) uint64 {
		var u uint64
		for k, x := range v {
			u |= uint64(uint16(x)) << (16 * k)
		}
		return u
	}
	unpack := func(u uint64) (v [4]int16) {
		for k := range v {
			v[k] = int16(uint16(u >> (16 * k)))
		}
		return
	}
	for it := 0; it < 20000; it++ {
		var a, b [4]int16
		for k := 0; k < 4; k++ {
			a[k] = int16(rng.Intn(1 << 16))
			b[k] = int16(rng.Intn(1 << 16))
		}
		ua, ub := pack(a), pack(b)
		sum := unpack(laneAdd(ua, ub))
		diff := unpack(laneSub(ua, ub))
		for k := 0; k < 4; k++ {
			if want := a[k] + b[k]; sum[k] != want {
				t.Fatalf("laneAdd lane %d: %d + %d = %d, want %d", k, a[k], b[k], sum[k], want)
			}
			if want := a[k] - b[k]; diff[k] != want {
				t.Fatalf("laneSub lane %d: %d - %d = %d, want %d", k, a[k], b[k], diff[k], want)
			}
		}
	}
}

// TestSADRowExhaustivePairs checks the biased absolute-difference path on
// every possible byte pair, in every chunk position.
func TestSADRowExhaustivePairs(t *testing.T) {
	for pos := 0; pos < 8; pos++ {
		var ra, rb [8]uint8
		for a := 0; a < 256; a++ {
			for b := 0; b < 256; b++ {
				ra[pos], rb[pos] = uint8(a), uint8(b)
				want := a - b
				if want < 0 {
					want = -want
				}
				if got := SADRow(ra[:], rb[:]); got != want {
					t.Fatalf("SADRow pos %d |%d-%d| = %d, want %d", pos, a, b, got, want)
				}
			}
		}
	}
}

// TestSADMatchesScalar sweeps widths (including non-multiples of 8 and of
// 4), heights and padded offsets against the scalar reference.
func TestSADMatchesScalar(t *testing.T) {
	a := randomPlane(48, 40, 2)
	b := randomPlane(48, 40, 3)
	for w := 1; w <= 21; w++ {
		for _, h := range []int{1, 2, 3, 5, 8, 16} {
			for _, off := range [][4]int{{0, 0, 0, 0}, {3, 1, -7, -5}, {-Pad, -Pad, 5, 9}, {17, 11, 24, 20}} {
				ax, ay, bx, by := off[0], off[1], off[2], off[3]
				got := SAD(&a, ax, ay, &b, bx, by, w, h)
				want := sadScalar(&a, ax, ay, &b, bx, by, w, h)
				if got != want {
					t.Fatalf("SAD %dx%d at (%d,%d)/(%d,%d): got %d, want %d", w, h, ax, ay, bx, by, got, want)
				}
			}
		}
	}
}

// TestSADRowLongAccumulation drives the worst-case lane load (all-255 vs
// all-0 rows far past the flush threshold) to prove the accumulator never
// wraps.
func TestSADRowLongAccumulation(t *testing.T) {
	const n = 8*sadFlush*3 + 20
	ra := make([]uint8, n)
	rb := make([]uint8, n)
	for i := range ra {
		ra[i] = 255
	}
	if got := SADRow(ra, rb); got != 255*n {
		t.Fatalf("SADRow saturated row: got %d, want %d", got, 255*n)
	}
}

// TestSATDMatchesScalar sweeps 4-multiple block sizes and offsets against
// the scalar Hadamard reference.
func TestSATDMatchesScalar(t *testing.T) {
	a := randomPlane(48, 40, 4)
	b := randomPlane(48, 40, 5)
	for _, w := range []int{4, 8, 12, 16} {
		for _, h := range []int{4, 8, 16} {
			for _, off := range [][4]int{{0, 0, 0, 0}, {2, 6, -3, -1}, {-8, -4, 13, 7}, {21, 15, 1, 19}} {
				ax, ay, bx, by := off[0], off[1], off[2], off[3]
				got := SATD(&a, ax, ay, &b, bx, by, w, h)
				want := satdScalar(&a, ax, ay, &b, bx, by, w, h)
				if got != want {
					t.Fatalf("SATD %dx%d at (%d,%d)/(%d,%d): got %d, want %d", w, h, ax, ay, bx, by, got, want)
				}
			}
		}
	}
}

// TestHadamardPackedExtremes pins the packed transform on the all-extreme
// difference blocks where lane overflow would first show.
func TestHadamardPackedExtremes(t *testing.T) {
	hi := [4]uint8{255, 255, 255, 255}
	lo := [4]uint8{0, 0, 0, 0}
	r := PackDiff4(hi[:], lo[:])
	got := Hadamard4x4Packed(r, r, r, r)
	var d [16]int32
	for i := range d {
		d[i] = 255
	}
	if want := int(hadamard4x4(&d)); got != want {
		t.Fatalf("packed Hadamard all-255: got %d, want %d", got, want)
	}
	r = PackDiff4(lo[:], hi[:])
	got = Hadamard4x4Packed(r, r, r, r)
	for i := range d {
		d[i] = -255
	}
	if want := int(hadamard4x4(&d)); got != want {
		t.Fatalf("packed Hadamard all-minus-255: got %d, want %d", got, want)
	}
}

// FuzzSADRow feeds arbitrary rows of arbitrary (equal) lengths through both
// implementations.
func FuzzSADRow(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{9, 8, 7, 6, 5, 4, 3, 2, 1})
	f.Add([]byte{255}, []byte{0})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, ra, rb []byte) {
		n := len(ra)
		if len(rb) < n {
			n = len(rb)
		}
		ra, rb = ra[:n], rb[:n]
		want := 0
		for i := range ra {
			d := int(ra[i]) - int(rb[i])
			if d < 0 {
				d = -d
			}
			want += d
		}
		if got := SADRow(ra, rb); got != want {
			t.Fatalf("SADRow(%v, %v) = %d, want %d", ra, rb, got, want)
		}
	})
}

// FuzzSADPlane derives block geometry (width not restricted to multiples of
// 8 or 4) and plane content from fuzz input and compares against the scalar
// reference.
func FuzzSADPlane(f *testing.F) {
	f.Add(int64(7), uint8(13), uint8(9), uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, wSel, hSel, axSel, aySel uint8) {
		w := 1 + int(wSel)%24
		h := 1 + int(hSel)%16
		a := randomPlane(32, 24, seed)
		b := randomPlane(32, 24, seed+1)
		ax := int(axSel)%(32+2*Pad-w) - Pad
		ay := int(aySel)%(24+2*Pad-h) - Pad
		bx, by := -ax/2, -ay/2
		got := SAD(&a, ax, ay, &b, bx, by, w, h)
		want := sadScalar(&a, ax, ay, &b, bx, by, w, h)
		if got != want {
			t.Fatalf("SAD %dx%d at (%d,%d)/(%d,%d): got %d, want %d", w, h, ax, ay, bx, by, got, want)
		}
	})
}

// FuzzSATDPlane is FuzzSADPlane for the Hadamard metric (4-aligned sizes).
func FuzzSATDPlane(f *testing.F) {
	f.Add(int64(11), uint8(2), uint8(1), uint8(40), uint8(17))
	f.Fuzz(func(t *testing.T, seed int64, wSel, hSel, axSel, aySel uint8) {
		w := 4 * (1 + int(wSel)%4)
		h := 4 * (1 + int(hSel)%4)
		a := randomPlane(32, 24, seed)
		b := randomPlane(32, 24, seed+1)
		ax := int(axSel)%(32+2*Pad-w) - Pad
		ay := int(aySel)%(24+2*Pad-h) - Pad
		bx, by := -ax/2, -ay/2
		got := SATD(&a, ax, ay, &b, bx, by, w, h)
		want := satdScalar(&a, ax, ay, &b, bx, by, w, h)
		if got != want {
			t.Fatalf("SATD %dx%d at (%d,%d)/(%d,%d): got %d, want %d", w, h, ax, ay, bx, by, got, want)
		}
	})
}
