package frame

import "math"

// SAD returns the sum of absolute differences between the w x h block at
// (ax, ay) in a and the block at (bx, by) in b. Coordinates may reach into
// plane padding. Rows run through the SWAR kernel (see swar.go); sadScalar
// is the reference the equivalence and fuzz tests pin it against.
func SAD(a *Plane, ax, ay int, b *Plane, bx, by, w, h int) int {
	sad := 0
	for j := 0; j < h; j++ {
		sad += SADRow(a.RowFrom(ax, ay+j, w), b.RowFrom(bx, by+j, w))
	}
	return sad
}

// sadScalar is the byte-at-a-time reference implementation of SAD.
func sadScalar(a *Plane, ax, ay int, b *Plane, bx, by, w, h int) int {
	sad := 0
	for j := 0; j < h; j++ {
		ra := a.RowFrom(ax, ay+j, w)
		rb := b.RowFrom(bx, by+j, w)
		for i, va := range ra {
			d := int(va) - int(rb[i])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// SSD returns the sum of squared differences between two equally sized
// blocks; it is the distortion measure used for RD decisions and PSNR.
func SSD(a *Plane, ax, ay int, b *Plane, bx, by, w, h int) int64 {
	var ssd int64
	for j := 0; j < h; j++ {
		ra := a.RowFrom(ax, ay+j, w)
		rb := b.RowFrom(bx, by+j, w)
		for i, va := range ra {
			d := int64(va) - int64(rb[i])
			ssd += d * d
		}
	}
	return ssd
}

// hadamard4x4 performs the 4x4 Hadamard transform of d in place and returns
// the sum of absolute transformed coefficients.
func hadamard4x4(d *[16]int32) int32 {
	// Rows.
	for i := 0; i < 16; i += 4 {
		s0 := d[i] + d[i+1]
		s1 := d[i] - d[i+1]
		s2 := d[i+2] + d[i+3]
		s3 := d[i+2] - d[i+3]
		d[i] = s0 + s2
		d[i+1] = s1 + s3
		d[i+2] = s0 - s2
		d[i+3] = s1 - s3
	}
	// Columns and accumulation.
	var sum int32
	for i := 0; i < 4; i++ {
		s0 := d[i] + d[i+4]
		s1 := d[i] - d[i+4]
		s2 := d[i+8] + d[i+12]
		s3 := d[i+8] - d[i+12]
		for _, v := range [4]int32{s0 + s2, s1 + s3, s0 - s2, s1 - s3} {
			if v < 0 {
				v = -v
			}
			sum += v
		}
	}
	return sum
}

// SATD returns the sum of absolute Hadamard-transformed differences between
// two w x h blocks, computed over 4x4 sub-blocks. w and h must be multiples
// of 4. SATD approximates the post-transform coding cost far better than SAD
// and is what x264 uses at subme >= 3. Each 4x4 tile runs through the packed
// SWAR Hadamard (see swar.go); satdScalar is the pinned reference.
func SATD(a *Plane, ax, ay int, b *Plane, bx, by, w, h int) int {
	total := 0
	for j := 0; j < h; j += 4 {
		for i := 0; i < w; i += 4 {
			total += Hadamard4x4Packed(
				PackDiff4(a.RowFrom(ax+i, ay+j, 4), b.RowFrom(bx+i, by+j, 4)),
				PackDiff4(a.RowFrom(ax+i, ay+j+1, 4), b.RowFrom(bx+i, by+j+1, 4)),
				PackDiff4(a.RowFrom(ax+i, ay+j+2, 4), b.RowFrom(bx+i, by+j+2, 4)),
				PackDiff4(a.RowFrom(ax+i, ay+j+3, 4), b.RowFrom(bx+i, by+j+3, 4)),
			)
		}
	}
	// Normalize by 2 to keep SATD on a scale comparable with SAD.
	return total / 2
}

// satdScalar is the coefficient-at-a-time reference implementation of SATD.
func satdScalar(a *Plane, ax, ay int, b *Plane, bx, by, w, h int) int {
	var total int32
	var d [16]int32
	for j := 0; j < h; j += 4 {
		for i := 0; i < w; i += 4 {
			for y := 0; y < 4; y++ {
				ra := a.RowFrom(ax+i, ay+j+y, 4)
				rb := b.RowFrom(bx+i, by+j+y, 4)
				for x := 0; x < 4; x++ {
					d[y*4+x] = int32(ra[x]) - int32(rb[x])
				}
			}
			total += hadamard4x4(&d)
		}
	}
	return int(total / 2)
}

// PlanePSNR returns the peak signal-to-noise ratio in dB between two planes
// of identical dimensions. Identical planes yield +Inf.
func PlanePSNR(a, b *Plane) float64 {
	ssd := SSD(a, 0, 0, b, 0, 0, a.W, a.H)
	if ssd == 0 {
		return math.Inf(1)
	}
	mse := float64(ssd) / float64(a.W*a.H)
	return 10 * math.Log10(255*255/mse)
}

// PSNR returns the global PSNR of two frames combined across Y, Cb and Cr
// with the conventional 4:1:1 weighting (luma dominates, as in x264's
// reported global PSNR).
func PSNR(a, b *Frame) float64 {
	ssd := SSD(&a.Y, 0, 0, &b.Y, 0, 0, a.Y.W, a.Y.H) +
		SSD(&a.Cb, 0, 0, &b.Cb, 0, 0, a.Cb.W, a.Cb.H) +
		SSD(&a.Cr, 0, 0, &b.Cr, 0, 0, a.Cr.W, a.Cr.H)
	if ssd == 0 {
		return math.Inf(1)
	}
	n := a.Y.W*a.Y.H + a.Cb.W*a.Cb.H + a.Cr.W*a.Cr.H
	mse := float64(ssd) / float64(n)
	return 10 * math.Log10(255*255/mse)
}
