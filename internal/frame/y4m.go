package frame

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteY4M writes frames as a YUV4MPEG2 stream (4:2:0, 8-bit), the
// interchange format every video toolchain (ffmpeg, mpv, VMAF) accepts.
// All frames must share the dimensions of the first.
func WriteY4M(w io.Writer, frames []*Frame, fps int) error {
	if len(frames) == 0 {
		return fmt.Errorf("frame: no frames to write")
	}
	bw := bufio.NewWriter(w)
	f0 := frames[0]
	if _, err := fmt.Fprintf(bw, "YUV4MPEG2 W%d H%d F%d:1 Ip A1:1 C420\n",
		f0.Width, f0.Height, fps); err != nil {
		return err
	}
	for _, f := range frames {
		if f.Width != f0.Width || f.Height != f0.Height {
			return fmt.Errorf("frame: mixed dimensions in y4m stream")
		}
		if _, err := io.WriteString(bw, "FRAME\n"); err != nil {
			return err
		}
		for _, p := range []*Plane{&f.Y, &f.Cb, &f.Cr} {
			for y := 0; y < p.H; y++ {
				if _, err := bw.Write(p.Row(y)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadY4M parses a YUV4MPEG2 stream (4:2:0, 8-bit) into frames. Returns the
// frames and the nominal frame rate.
func ReadY4M(r io.Reader) ([]*Frame, int, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, 0, fmt.Errorf("frame: y4m header: %w", err)
	}
	fields := strings.Fields(strings.TrimSpace(header))
	if len(fields) == 0 || fields[0] != "YUV4MPEG2" {
		return nil, 0, fmt.Errorf("frame: not a y4m stream")
	}
	var width, height, fps int
	fps = 30
	for _, f := range fields[1:] {
		if len(f) < 2 {
			continue
		}
		switch f[0] {
		case 'W':
			width, _ = strconv.Atoi(f[1:])
		case 'H':
			height, _ = strconv.Atoi(f[1:])
		case 'F':
			if num, den, ok := strings.Cut(f[1:], ":"); ok {
				n, _ := strconv.Atoi(num)
				d, _ := strconv.Atoi(den)
				if d > 0 {
					fps = n / d
				}
			}
		case 'C':
			if f != "C420" && f != "C420jpeg" && f != "C420mpeg2" {
				return nil, 0, fmt.Errorf("frame: unsupported chroma sampling %q", f)
			}
		}
	}
	if width <= 0 || height <= 0 || width%16 != 0 || height%16 != 0 {
		return nil, 0, fmt.Errorf("frame: y4m dimensions %dx%d not multiples of 16", width, height)
	}

	var frames []*Frame
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF && line == "" {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("frame: y4m frame header: %w", err)
		}
		if !strings.HasPrefix(line, "FRAME") {
			return nil, 0, fmt.Errorf("frame: expected FRAME marker, got %q", strings.TrimSpace(line))
		}
		f := New(width, height)
		f.PTS = len(frames)
		for _, p := range []*Plane{&f.Y, &f.Cb, &f.Cr} {
			for y := 0; y < p.H; y++ {
				if _, err := io.ReadFull(br, p.Row(y)); err != nil {
					return nil, 0, fmt.Errorf("frame: y4m pixel data: %w", err)
				}
			}
		}
		f.ExtendEdges()
		frames = append(frames, f)
	}
	if len(frames) == 0 {
		return nil, 0, fmt.Errorf("frame: y4m stream has no frames")
	}
	return frames, fps, nil
}
