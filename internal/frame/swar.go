package frame

// SWAR (SIMD-within-a-register) pixel kernels: eight pixels ride in one
// uint64, split into four 16-bit lanes per parity so that byte differences
// can accumulate without cross-lane carries. These are the software
// equivalent of the SSE2/AVX2 psadbw/phadd kernels that dominate x264's ME
// profile in the paper; the scalar bodies they replace are kept (sadScalar,
// satdScalar, hadamard4x4) as the reference implementations the equivalence
// and fuzz tests compare against.
//
// Lane layout is fixed little-endian (loadLE64) so results are identical on
// every platform: lane k of a packed word holds byte k of the source row.

import "encoding/binary"

const (
	lanesLo  = 0x00FF00FF00FF00FF // byte value in the low half of each 16-bit lane
	laneBias = 0x0100010001000100 // borrow-guard bit above each 16-bit lane's byte
	ones16   = 0x0001000100010001 // 1 in each 16-bit lane
	signs16  = 0x8000800080008000 // sign bit of each 16-bit lane
)

func loadLE64(p []uint8) uint64 { return binary.LittleEndian.Uint64(p) }
func loadLE32(p []uint8) uint32 { return binary.LittleEndian.Uint32(p) }

// spread4 distributes the four bytes of x into the four 16-bit lanes of a
// uint64 (byte 0 in lane 0, ... byte 3 in lane 3).
func spread4(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	v = (v | v<<8) & lanesLo
	return v
}

// absDiffLanes returns |a-b| per 16-bit lane for lane values in [0, 255].
// The bias trick computes both a-b and b-a with a borrow guard in bit 8 of
// each lane, then selects the non-negative one: the guard bit survives
// exactly when the subtraction did not borrow.
func absDiffLanes(a, b uint64) uint64 {
	p := (a | laneBias) - b
	q := (b | laneBias) - a
	m := ((p >> 8) & ones16) * 0xFF // 0xFF in lanes where a >= b
	m |= m << 8                     // widen the select mask to the full lane
	return ((p & m) | (q &^ m)) & lanesLo
}

// sadChunk returns the per-lane sums |x_k - y_k| + |x_{k+4} - y_{k+4}| of
// two 8-byte groups: even bytes land in the low half of each lane, odd bytes
// in the high half, so one call folds 8 pixels into 4 lanes of at most 510.
func sadChunk(x, y uint64) uint64 {
	even := absDiffLanes(x&lanesLo, y&lanesLo)
	odd := absDiffLanes((x>>8)&lanesLo, (y>>8)&lanesLo)
	return even + odd
}

// sumLanes16 adds the four 16-bit lanes of v; the total must stay below
// 2^16 for the multiply-shift horizontal sum to be exact.
func sumLanes16(v uint64) int { return int((v * ones16) >> 48) }

// sadFlush bounds lane accumulation: each sadChunk adds at most 510 to each
// of the four lanes, and sumLanes16 is exact only while the grand total
// stays below 2^16, so 32 chunks (4 x 510 x 32 = 65280) is the last safe
// count before the horizontal sum could wrap.
const sadFlush = 32

// SADRow returns the sum of absolute differences of two equal-length pixel
// rows, eight pixels per step with a four-pixel and scalar tail. It is the
// row primitive under SAD and the codec's thresholded/staged SAD kernels.
func SADRow(ra, rb []uint8) int {
	n := len(ra)
	s := 0
	i := 0
	var acc uint64
	chunks := 0
	for ; i+8 <= n; i += 8 {
		acc += sadChunk(loadLE64(ra[i:]), loadLE64(rb[i:]))
		if chunks++; chunks == sadFlush {
			s += sumLanes16(acc)
			acc, chunks = 0, 0
		}
	}
	if i+4 <= n {
		acc += absDiffLanes(spread4(loadLE32(ra[i:])), spread4(loadLE32(rb[i:])))
		i += 4
	}
	s += sumLanes16(acc)
	for ; i < n; i++ {
		d := int(ra[i]) - int(rb[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// laneAdd and laneSub perform independent 16-bit two's-complement additions
// and subtractions in the four lanes of a uint64 (Hacker's Delight §2-18:
// the sign bits are carried out of the partial operation and patched back
// with xor so no carry or borrow crosses a lane boundary).
func laneAdd(x, y uint64) uint64 {
	return ((x &^ signs16) + (y &^ signs16)) ^ ((x ^ y) & signs16)
}

func laneSub(x, y uint64) uint64 {
	return ((x | signs16) - (y &^ signs16)) ^ ((x ^ ^y) & signs16)
}

// absLanes16 returns the per-lane absolute value of four 16-bit
// two's-complement lanes (lane values must exceed -32768).
func absLanes16(v uint64) uint64 {
	s := (v >> 15) & ones16 // 1 in negative lanes
	m := s * 0xFFFF
	return (v ^ m) + s
}

// PackDiff4 packs the difference of two 4-pixel rows into four 16-bit
// two's-complement lanes: lane k holds ra[k] - rb[k] in [-255, 255]. It
// feeds Hadamard4x4Packed.
func PackDiff4(ra, rb []uint8) uint64 {
	return laneSub(spread4(loadLE32(ra)), spread4(loadLE32(rb)))
}

const (
	halfLanes = 0x0000FFFF0000FFFF // lanes 0 and 2
	lowLanes  = 0x00000000FFFFFFFF // lanes 0 and 1
)

// hadamardRow applies the two horizontal butterfly stages of the 4x4
// Hadamard transform to one packed row [d0 d1 d2 d3], yielding
// [d0+d1+d2+d3, (d0-d1)+(d2-d3), (d0+d1)-(d2+d3), (d0-d1)-(d2-d3)].
func hadamardRow(v uint64) uint64 {
	// Stage 1: adjacent pairs. Swapping neighbours lets one laneAdd/laneSub
	// pair produce all four results; the mask keeps the sums in lanes 0, 2
	// and the differences in lanes 1, 3.
	u := ((v >> 16) & halfLanes) | ((v & halfLanes) << 16)
	v = (laneAdd(v, u) & halfLanes) | (laneSub(v, u) &^ halfLanes)
	// Stage 2: pair distance two, via a 32-bit half swap.
	u = v>>32 | v<<32
	return (laneAdd(v, u) & lowLanes) | (laneSub(v, u) &^ lowLanes)
}

// Ones16 is 1 in each 16-bit lane: the unit constant of the packed-lane
// arithmetic exported below.
const Ones16 = ones16

// Spread4 distributes the four bytes of x into the four 16-bit lanes of a
// uint64 (byte 0 in lane 0, ... byte 3 in lane 3). Exported alongside
// LaneAdd/LaneSub so packed kernels outside this package (the codec's
// deblocking filter and fused intra/SATD paths) share one lane layout.
func Spread4(x uint32) uint64 { return spread4(x) }

// Pack4 is the inverse of Spread4 for lane values in [0, 255]: it gathers
// the low byte of each 16-bit lane back into a packed 4-byte word.
func Pack4(v uint64) uint32 {
	v &= lanesLo
	v = (v | v>>8) & 0x0000FFFF0000FFFF
	return uint32(v | v>>16)
}

// LaneAdd adds the four 16-bit two's-complement lanes independently.
func LaneAdd(x, y uint64) uint64 { return laneAdd(x, y) }

// LaneSub subtracts the four 16-bit two's-complement lanes independently.
func LaneSub(x, y uint64) uint64 { return laneSub(x, y) }

// AbsLanes16 returns the per-lane absolute value of four 16-bit lanes.
func AbsLanes16(v uint64) uint64 { return absLanes16(v) }

// SumLanes16 adds the four 16-bit lanes (total must stay below 2^16).
func SumLanes16(v uint64) int { return sumLanes16(v) }

// Hadamard4x4Packed returns the sum of absolute 4x4 Hadamard-transform
// coefficients of a difference block whose rows are packed 16-bit lanes
// (see PackDiff4). All intermediate values stay within +-4080, well inside
// a lane, so the SWAR arithmetic is exact; it matches hadamard4x4 on the
// equivalent [16]int32 block coefficient for coefficient.
func Hadamard4x4Packed(r0, r1, r2, r3 uint64) int {
	r0 = hadamardRow(r0)
	r1 = hadamardRow(r1)
	r2 = hadamardRow(r2)
	r3 = hadamardRow(r3)
	// Vertical butterflies run lane-parallel across the four row words.
	s0 := laneAdd(r0, r1)
	s1 := laneSub(r0, r1)
	s2 := laneAdd(r2, r3)
	s3 := laneSub(r2, r3)
	sum := absLanes16(laneAdd(s0, s2)) + absLanes16(laneAdd(s1, s3)) +
		absLanes16(laneSub(s0, s2)) + absLanes16(laneSub(s1, s3))
	// Each abs lane is at most 4080 and four of them stack per lane, so the
	// horizontal total (max 65280) still fits the exact multiply-shift sum.
	return sumLanes16(sum)
}
