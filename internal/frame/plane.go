// Package frame provides the raw-video substrate used by the codec and the
// workload generator: padded YUV 4:2:0 frames, pixel planes, and the block
// metrics (SAD, SATD, SSD, PSNR) that drive encoding decisions.
//
// Planes carry edge padding so that motion search and sub-pel interpolation
// may read slightly outside the visible picture without bounds checks, the
// same trick production encoders use.
package frame

// Pad is the number of padding pixels kept on every side of a plane. Motion
// search ranges and interpolation taps must stay within this margin.
const Pad = 32

// Plane is a single rectangular component (luma or chroma) with edge padding.
// Pixel (0,0) of the visible area lives at Pix[Pad*Stride+Pad].
type Plane struct {
	W, H   int     // visible dimensions
	Stride int     // bytes per padded row (W + 2*Pad)
	Pix    []uint8 // padded storage, len == Stride*(H+2*Pad)
	Base   uint64  // virtual base address used for memory tracing
}

// NewPlane allocates a zeroed plane of the given visible size.
func NewPlane(w, h int) Plane {
	stride := w + 2*Pad
	return Plane{
		W:      w,
		H:      h,
		Stride: stride,
		Pix:    make([]uint8, stride*(h+2*Pad)),
	}
}

// index returns the storage index of visible pixel (x, y). Coordinates may
// range over [-Pad, W+Pad) x [-Pad, H+Pad).
func (p *Plane) index(x, y int) int {
	return (y+Pad)*p.Stride + (x + Pad)
}

// At returns the pixel at visible coordinate (x, y); the coordinate may
// extend into the padding margin.
func (p *Plane) At(x, y int) uint8 { return p.Pix[p.index(x, y)] }

// Set writes the pixel at visible coordinate (x, y).
func (p *Plane) Set(x, y int, v uint8) { p.Pix[p.index(x, y)] = v }

// Row returns the visible pixels of row y as a slice of length W.
func (p *Plane) Row(y int) []uint8 {
	i := p.index(0, y)
	return p.Pix[i : i+p.W]
}

// RowFrom returns a slice starting at visible coordinate (x, y) extending n
// pixels; it may begin in the left padding and extend into the right padding.
func (p *Plane) RowFrom(x, y, n int) []uint8 {
	i := p.index(x, y)
	return p.Pix[i : i+n]
}

// Addr returns the virtual address of visible pixel (x, y) for tracing.
func (p *Plane) Addr(x, y int) uint64 {
	return p.Base + uint64(p.index(x, y))
}

// ExtendEdges replicates the border pixels of the visible area into the
// padding margin. Call after the visible area has been (re)written.
func (p *Plane) ExtendEdges() {
	// Left and right margins.
	for y := 0; y < p.H; y++ {
		row := p.Pix[(y+Pad)*p.Stride:]
		l, r := row[Pad], row[Pad+p.W-1]
		for x := 0; x < Pad; x++ {
			row[x] = l
			row[Pad+p.W+x] = r
		}
	}
	// Top and bottom margins (full padded width).
	top := p.Pix[Pad*p.Stride : Pad*p.Stride+p.Stride]
	bottom := p.Pix[(Pad+p.H-1)*p.Stride : (Pad+p.H-1)*p.Stride+p.Stride]
	for y := 0; y < Pad; y++ {
		copy(p.Pix[y*p.Stride:(y+1)*p.Stride], top)
		copy(p.Pix[(Pad+p.H+y)*p.Stride:(Pad+p.H+y+1)*p.Stride], bottom)
	}
}

// CopyFrom copies the visible area (and padding) of src, which must have the
// same dimensions.
func (p *Plane) CopyFrom(src *Plane) {
	copy(p.Pix, src.Pix)
}

// Fill sets every pixel of the visible area to v (padding included).
func (p *Plane) Fill(v uint8) {
	for i := range p.Pix {
		p.Pix[i] = v
	}
}

// Mean returns the average pixel value of the visible area.
func (p *Plane) Mean() float64 {
	var sum uint64
	for y := 0; y < p.H; y++ {
		for _, v := range p.Row(y) {
			sum += uint64(v)
		}
	}
	return float64(sum) / float64(p.W*p.H)
}

// BlockVariance returns the population variance of the w x h block whose
// top-left visible coordinate is (x, y). It is the activity measure used by
// adaptive quantization.
func (p *Plane) BlockVariance(x, y, w, h int) float64 {
	var sum, sq int64
	for j := 0; j < h; j++ {
		row := p.RowFrom(x, y+j, w)
		for _, v := range row {
			iv := int64(v)
			sum += iv
			sq += iv * iv
		}
	}
	n := int64(w * h)
	mean := float64(sum) / float64(n)
	return float64(sq)/float64(n) - mean*mean
}
