package frame

import (
	"math"
	"testing"
	"testing/quick"
)

func fillPattern(p *Plane, seed int) {
	for y := 0; y < p.H; y++ {
		row := p.Row(y)
		for x := range row {
			row[x] = uint8((x*7 + y*13 + seed*31) % 251)
		}
	}
	p.ExtendEdges()
}

func TestNewPlaneGeometry(t *testing.T) {
	p := NewPlane(64, 48)
	if p.W != 64 || p.H != 48 {
		t.Fatalf("dims %dx%d", p.W, p.H)
	}
	if p.Stride != 64+2*Pad {
		t.Fatalf("stride %d", p.Stride)
	}
	if len(p.Pix) != p.Stride*(48+2*Pad) {
		t.Fatalf("storage %d", len(p.Pix))
	}
}

func TestPlaneAtSetRoundtrip(t *testing.T) {
	p := NewPlane(32, 32)
	p.Set(5, 7, 200)
	if got := p.At(5, 7); got != 200 {
		t.Fatalf("At(5,7) = %d", got)
	}
	// Padding coordinates are legal.
	p.Set(-1, -1, 33)
	if got := p.At(-1, -1); got != 33 {
		t.Fatalf("padding At = %d", got)
	}
}

func TestExtendEdgesReplicatesBorders(t *testing.T) {
	p := NewPlane(32, 16)
	fillPattern(&p, 0)
	for d := 1; d <= Pad; d++ {
		if p.At(-d, 0) != p.At(0, 0) {
			t.Fatalf("left padding at distance %d not replicated", d)
		}
		if p.At(p.W-1+d, p.H-1) != p.At(p.W-1, p.H-1) {
			t.Fatalf("bottom-right padding at distance %d not replicated", d)
		}
		if p.At(3, -d) != p.At(3, 0) {
			t.Fatalf("top padding at distance %d not replicated", d)
		}
	}
	// Corners replicate the corner pixel.
	if p.At(-Pad, -Pad) != p.At(0, 0) {
		t.Fatal("corner padding not replicated")
	}
}

func TestRowFromSpansPadding(t *testing.T) {
	p := NewPlane(32, 16)
	fillPattern(&p, 1)
	row := p.RowFrom(-2, 3, 8)
	if len(row) != 8 {
		t.Fatalf("len %d", len(row))
	}
	if row[0] != p.At(-2, 3) || row[7] != p.At(5, 3) {
		t.Fatal("RowFrom window mismatch")
	}
}

func TestSADZeroOnIdenticalBlocks(t *testing.T) {
	p := NewPlane(48, 48)
	fillPattern(&p, 2)
	if sad := SAD(&p, 4, 4, &p, 4, 4, 16, 16); sad != 0 {
		t.Fatalf("self-SAD = %d", sad)
	}
	if ssd := SSD(&p, 8, 8, &p, 8, 8, 16, 16); ssd != 0 {
		t.Fatalf("self-SSD = %d", ssd)
	}
	if satd := SATD(&p, 0, 0, &p, 0, 0, 16, 16); satd != 0 {
		t.Fatalf("self-SATD = %d", satd)
	}
}

func TestSADSymmetric(t *testing.T) {
	a, b := NewPlane(48, 48), NewPlane(48, 48)
	fillPattern(&a, 3)
	fillPattern(&b, 4)
	f := func(ox, oy uint8) bool {
		x, y := int(ox)%16, int(oy)%16
		return SAD(&a, x, y, &b, y, x, 16, 16) == SAD(&b, y, x, &a, x, y, 16, 16)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSATDDetectsDifferenceSADMisses(t *testing.T) {
	// A block vs its negated-gradient counterpart with equal SAD can have
	// very different SATD; at minimum SATD must be positive whenever the
	// blocks differ.
	a, b := NewPlane(16, 16), NewPlane(16, 16)
	fillPattern(&a, 5)
	fillPattern(&b, 6)
	a.ExtendEdges()
	b.ExtendEdges()
	if SATD(&a, 0, 0, &b, 0, 0, 16, 16) <= 0 {
		t.Fatal("SATD of different blocks should be positive")
	}
}

func TestPSNRIdenticalIsInf(t *testing.T) {
	f := New(32, 32)
	fillPattern(&f.Y, 7)
	g := f.Clone()
	if !math.IsInf(PSNR(f, g), 1) {
		t.Fatal("identical frames must have infinite PSNR")
	}
}

func TestPSNRSymmetricAndOrdered(t *testing.T) {
	f, g, h := New(32, 32), New(32, 32), New(32, 32)
	fillPattern(&f.Y, 8)
	// g: small perturbation; h: large perturbation.
	g.Y.CopyFrom(&f.Y)
	h.Y.CopyFrom(&f.Y)
	for i := 0; i < 100; i++ {
		g.Y.Set(i%32, i/32, g.Y.At(i%32, i/32)+2)
		h.Y.Set(i%32, i/32, h.Y.At(i%32, i/32)+60)
	}
	if PSNR(f, g) != PSNR(g, f) {
		t.Fatal("PSNR not symmetric")
	}
	if PSNR(f, g) <= PSNR(f, h) {
		t.Fatalf("small perturbation (%f) should beat large (%f)", PSNR(f, g), PSNR(f, h))
	}
}

func TestBlockVariance(t *testing.T) {
	p := NewPlane(32, 32)
	p.Fill(100)
	if v := p.BlockVariance(0, 0, 16, 16); v != 0 {
		t.Fatalf("flat block variance %f", v)
	}
	fillPattern(&p, 9)
	if v := p.BlockVariance(0, 0, 16, 16); v <= 0 {
		t.Fatalf("textured block variance %f", v)
	}
}

func TestMeanFlat(t *testing.T) {
	p := NewPlane(32, 16)
	p.Fill(77)
	if m := p.Mean(); m != 77 {
		t.Fatalf("mean %f", m)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 16}, {16, 0}, {17, 16}, {16, 24}, {-16, 16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFrameSetBaseLayout(t *testing.T) {
	f := New(64, 32)
	f.SetBase(0x1000)
	if f.Y.Base != 0x1000 {
		t.Fatal("Y base")
	}
	if f.Cb.Base != 0x1000+uint64(len(f.Y.Pix)) {
		t.Fatal("Cb base not after Y")
	}
	if f.Cr.Base != f.Cb.Base+uint64(len(f.Cb.Pix)) {
		t.Fatal("Cr base not after Cb")
	}
	// Addr is consistent with the plane layout.
	if f.Y.Addr(0, 0) != 0x1000+uint64(Pad*f.Y.Stride+Pad) {
		t.Fatal("Addr(0,0) mismatch")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := New(32, 32)
	fillPattern(&f.Y, 10)
	g := f.Clone()
	g.Y.Set(0, 0, f.Y.At(0, 0)+1)
	if f.Y.At(0, 0) == g.Y.At(0, 0) {
		t.Fatal("clone shares storage")
	}
}

func TestSADThresholdPropertyVsSSD(t *testing.T) {
	// SSD >= SAD^2/n (Cauchy-Schwarz) for any block pair.
	a, b := NewPlane(32, 32), NewPlane(32, 32)
	fillPattern(&a, 11)
	fillPattern(&b, 12)
	f := func(ox, oy uint8) bool {
		x, y := int(ox)%16, int(oy)%16
		sad := int64(SAD(&a, x, y, &b, x, y, 16, 16))
		ssd := SSD(&a, x, y, &b, x, y, 16, 16)
		return ssd*256 >= sad*sad
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSAD16x16(b *testing.B) {
	p, q := NewPlane(64, 64), NewPlane(64, 64)
	fillPattern(&p, 1)
	fillPattern(&q, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SAD(&p, 8, 8, &q, 9, 7, 16, 16)
	}
}

func BenchmarkSATD16x16(b *testing.B) {
	p, q := NewPlane(64, 64), NewPlane(64, 64)
	fillPattern(&p, 1)
	fillPattern(&q, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SATD(&p, 8, 8, &q, 9, 7, 16, 16)
	}
}
