package frame

import "fmt"

// Frame is a YUV 4:2:0 picture. Chroma planes are half the luma resolution
// in each dimension. Dimensions must be multiples of 16 (one macroblock).
type Frame struct {
	Width, Height int
	Y, Cb, Cr     Plane
	PTS           int // presentation index within the stream
}

// New allocates a zeroed frame. Width and height must be positive multiples
// of 16; New panics otherwise, since a misaligned frame is a programming
// error everywhere in this module.
func New(w, h int) *Frame {
	if w <= 0 || h <= 0 || w%16 != 0 || h%16 != 0 {
		panic(fmt.Sprintf("frame: dimensions %dx%d not positive multiples of 16", w, h))
	}
	return &Frame{
		Width:  w,
		Height: h,
		Y:      NewPlane(w, h),
		Cb:     NewPlane(w/2, h/2),
		Cr:     NewPlane(w/2, h/2),
	}
}

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := New(f.Width, f.Height)
	g.PTS = f.PTS
	g.Y.CopyFrom(&f.Y)
	g.Cb.CopyFrom(&f.Cb)
	g.Cr.CopyFrom(&f.Cr)
	g.Y.Base, g.Cb.Base, g.Cr.Base = f.Y.Base, f.Cb.Base, f.Cr.Base
	return g
}

// ExtendEdges pads all three planes; call once the pixel data is final.
func (f *Frame) ExtendEdges() {
	f.Y.ExtendEdges()
	f.Cb.ExtendEdges()
	f.Cr.ExtendEdges()
}

// SetBase assigns virtual base addresses to the three planes for memory
// tracing. Planes are laid out consecutively starting at base.
func (f *Frame) SetBase(base uint64) {
	f.Y.Base = base
	f.Cb.Base = base + uint64(len(f.Y.Pix))
	f.Cr.Base = f.Cb.Base + uint64(len(f.Cb.Pix))
}

// ByteSize returns the padded storage footprint of the frame in bytes.
func (f *Frame) ByteSize() int {
	return len(f.Y.Pix) + len(f.Cb.Pix) + len(f.Cr.Pix)
}

// MBWidth returns the picture width in 16x16 macroblocks.
func (f *Frame) MBWidth() int { return f.Width / 16 }

// MBHeight returns the picture height in 16x16 macroblocks.
func (f *Frame) MBHeight() int { return f.Height / 16 }
