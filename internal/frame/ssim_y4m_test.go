package frame

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSSIMIdenticalIsOne(t *testing.T) {
	f := New(64, 64)
	fillPattern(&f.Y, 3)
	if s := SSIM(f, f); math.Abs(s-1) > 1e-9 {
		t.Fatalf("self-SSIM %f", s)
	}
}

func TestSSIMOrdersDistortions(t *testing.T) {
	f := New(64, 64)
	fillPattern(&f.Y, 4)
	mild, harsh := f.Clone(), f.Clone()
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			mild.Y.Set(x, y, mild.Y.At(x, y)+uint8((x+y)%3))
			harsh.Y.Set(x, y, uint8((x*41+y*17)%255))
		}
	}
	sMild, sHarsh := SSIM(f, mild), SSIM(f, harsh)
	if !(sMild > sHarsh) {
		t.Fatalf("SSIM ordering: mild %f harsh %f", sMild, sHarsh)
	}
	if sMild < 0.8 {
		t.Fatalf("mild distortion SSIM %f too low", sMild)
	}
	if sHarsh > 0.6 {
		t.Fatalf("structure-destroying distortion SSIM %f too high", sHarsh)
	}
}

func TestSSIMBounded(t *testing.T) {
	a, b := New(64, 64), New(64, 64)
	fillPattern(&a.Y, 5)
	fillPattern(&b.Y, 99)
	s := SSIM(a, b)
	if s < -1 || s > 1 {
		t.Fatalf("SSIM %f out of range", s)
	}
}

func TestSSIMToDB(t *testing.T) {
	if !math.IsInf(SSIMToDB(1), 1) {
		t.Fatal("perfect SSIM must map to +Inf dB")
	}
	if db := SSIMToDB(0.99); math.Abs(db-20) > 1e-9 {
		t.Fatalf("0.99 -> %f dB, want 20", db)
	}
	if SSIMToDB(0.9) >= SSIMToDB(0.99) {
		t.Fatal("SSIM dB not monotone")
	}
}

func TestY4MRoundtrip(t *testing.T) {
	var frames []*Frame
	for i := 0; i < 3; i++ {
		f := New(64, 48)
		f.PTS = i
		fillPattern(&f.Y, i)
		fillPattern(&f.Cb, i+10)
		fillPattern(&f.Cr, i+20)
		frames = append(frames, f)
	}
	var buf bytes.Buffer
	if err := WriteY4M(&buf, frames, 25); err != nil {
		t.Fatal(err)
	}
	got, fps, err := ReadY4M(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fps != 25 || len(got) != 3 {
		t.Fatalf("fps %d frames %d", fps, len(got))
	}
	for i := range frames {
		if !math.IsInf(PSNR(frames[i], got[i]), 1) {
			t.Fatalf("frame %d not bit-exact after y4m roundtrip", i)
		}
		if got[i].PTS != i {
			t.Fatal("pts not sequential")
		}
	}
}

func TestY4MHeaderContents(t *testing.T) {
	f := New(64, 48)
	var buf bytes.Buffer
	if err := WriteY4M(&buf, []*Frame{f}, 30); err != nil {
		t.Fatal(err)
	}
	header, _, _ := strings.Cut(buf.String(), "\n")
	for _, tok := range []string{"YUV4MPEG2", "W64", "H48", "F30:1", "C420"} {
		if !strings.Contains(header, tok) {
			t.Fatalf("header %q missing %q", header, tok)
		}
	}
}

func TestY4MRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"RIFF....",
		"YUV4MPEG2 W64 H48 F30:1 C444\nFRAME\n",
		"YUV4MPEG2 W63 H48 F30:1 C420\nFRAME\n",
		"YUV4MPEG2 W64 H48 F30:1 C420\n", // no frames
		"YUV4MPEG2 W64 H48 F30:1 C420\nFRAME\nshort",
	}
	for i, c := range cases {
		if _, _, err := ReadY4M(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWriteY4MValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteY4M(&buf, nil, 30); err == nil {
		t.Fatal("empty stream accepted")
	}
	if err := WriteY4M(&buf, []*Frame{New(64, 48), New(32, 32)}, 30); err == nil {
		t.Fatal("mixed dimensions accepted")
	}
}
