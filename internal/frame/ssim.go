package frame

import "math"

// SSIM constants for 8-bit depth (the standard k1=0.01, k2=0.03 with
// L=255).
const (
	ssimC1 = (0.01 * 255) * (0.01 * 255)
	ssimC2 = (0.03 * 255) * (0.03 * 255)
)

// ssimWindow computes the SSIM index of one 8x8 window.
func ssimWindow(a, b *Plane, x, y int) float64 {
	var sa, sb, saa, sbb, sab float64
	for j := 0; j < 8; j++ {
		ra := a.RowFrom(x, y+j, 8)
		rb := b.RowFrom(x, y+j, 8)
		for i := 0; i < 8; i++ {
			va, vb := float64(ra[i]), float64(rb[i])
			sa += va
			sb += vb
			saa += va * va
			sbb += vb * vb
			sab += va * vb
		}
	}
	const n = 64
	ma, mb := sa/n, sb/n
	va := saa/n - ma*ma
	vb := sbb/n - mb*mb
	cov := sab/n - ma*mb
	return ((2*ma*mb + ssimC1) * (2*cov + ssimC2)) /
		((ma*ma + mb*mb + ssimC1) * (va + vb + ssimC2))
}

// PlaneSSIM returns the mean structural-similarity index between two
// planes of identical dimensions, computed over a dense grid of 8x8
// windows (stride 4). The result lies in (-1, 1]; identical planes yield 1.
func PlaneSSIM(a, b *Plane) float64 {
	var sum float64
	var n int
	for y := 0; y+8 <= a.H; y += 4 {
		for x := 0; x+8 <= a.W; x += 4 {
			sum += ssimWindow(a, b, x, y)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// SSIM returns the luma structural-similarity index of two frames, the
// perceptual quality metric commonly reported alongside PSNR in codec
// comparisons.
func SSIM(a, b *Frame) float64 {
	return PlaneSSIM(&a.Y, &b.Y)
}

// SSIMToDB converts an SSIM index to the conventional decibel form
// (-10*log10(1-ssim)); identical content maps to +Inf.
func SSIMToDB(ssim float64) float64 {
	if ssim >= 1 {
		return math.Inf(1)
	}
	return -10 * math.Log10(1-ssim)
}
