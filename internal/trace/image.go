package trace

// Region describes where one function's code lives in the (synthetic)
// binary image and how much of it is hot.
//
// TotalBytes is the full footprint of the compiled function. HotBytes is
// the size of the basic blocks that actually execute in steady state. In an
// unoptimized layout the hot blocks are interleaved with cold error/setup
// code, so the instruction fetch stream for the hot loop is *diluted* across
// the whole TotalBytes span. Feedback-directed optimization (AutoFDO) splits
// hot from cold and packs the hot blocks contiguously, shrinking the fetch
// footprint to HotBytes. This is exactly the mechanism by which AutoFDO
// reduces L1i and iTLB misses on real binaries.
type Region struct {
	Fn         FuncID
	Addr       uint64 // start address in the image
	TotalBytes int
	HotBytes   int
	Packed     bool // true once FDO has split hot/cold for this function
}

// FetchSpan returns the byte span the steady-state fetch stream of this
// function walks. When packed (after FDO hot/cold splitting) it is exactly
// the hot bytes. Unpacked, hot basic blocks are interleaved with cold code
// at block granularity, roughly doubling the cache-line footprint the hot
// path touches (capped by the function's total size).
func (r *Region) FetchSpan() int {
	if r.Packed {
		return r.HotBytes
	}
	span := 2 * r.HotBytes
	if span > r.TotalBytes {
		span = r.TotalBytes
	}
	return span
}

// Image is the synthetic binary layout: one Region per FuncID, placed at
// concrete addresses. The simulator fetches instructions from these address
// ranges, so layout decisions (ordering, hot/cold splitting) have measurable
// i-cache and iTLB consequences.
type Image struct {
	Regions [NumFuncs]Region
	Size    uint64 // total image size in bytes
	// canonical marks branch sites whose direction FDO flipped so the hot
	// path falls through (basic-block reordering).
	canonical map[uint32]bool
}

func branchKey(fn FuncID, site BranchID) uint32 {
	return uint32(fn)<<16 | uint32(site)
}

// BranchCanonical reports whether FDO canonicalized the branch at (fn,
// site) to fall through on its common path.
func (img *Image) BranchCanonical(fn FuncID, site BranchID) bool {
	return img.canonical[branchKey(fn, site)]
}

// SetCanonical marks a branch site as direction-canonicalized.
func (img *Image) SetCanonical(fn FuncID, site BranchID) {
	if img.canonical == nil {
		img.canonical = make(map[uint32]bool)
	}
	img.canonical[branchKey(fn, site)] = true
}

// codeBase is the virtual address where the text segment starts. It is kept
// disjoint from the data heap used for frame buffers.
const codeBase = 0x400000

// funcFootprint gives each hot function a realistic compiled size
// (totalBytes) and steady-state hot-loop size (hotBytes). Sizes are loosely
// modeled on the corresponding x264 object code: leaf pixel kernels are
// small and tight; analysis drivers are large with long cold tails.
var funcFootprint = [NumFuncs]struct{ total, hot int }{
	FnSAD:       {1536, 256},
	FnSATD:      {3072, 640},
	FnVariance:  {768, 192},
	FnMEDia:     {4096, 768},
	FnMEHex:     {5120, 1024},
	FnMEUMH:     {9216, 2048},
	FnMEESA:     {3584, 512},
	FnSubpel:    {7168, 1536},
	FnInterp:    {6144, 1024},
	FnIntraPred: {8192, 1792},
	FnAnalyse:   {16384, 3072},
	FnLookahead: {6144, 1024},
	FnFDCT:      {2560, 512},
	FnQuant:     {2048, 384},
	FnTrellis:   {10240, 2304},
	FnIQuant:    {1536, 320},
	FnIDCT:      {2560, 512},
	FnMC:        {2048, 384},
	FnDeblock:   {12288, 2560},
	FnCAVLC:     {11264, 2304},
	FnBitWriter: {1280, 256},
	FnRC:        {5120, 896},
	FnDecParse:  {9216, 1920},
	FnDecMC:     {4096, 768},
	FnDecIDCT:   {2560, 512},
	FnDecPred:   {4096, 896},
	FnDriver:    {8192, 1536},
}

// NewImage builds the default (compiler-ordered) code image. `order` gives
// the function placement order; pass nil for the default declaration order,
// which — like a real build — interleaves hot and cold functions.
func NewImage(order []FuncID) *Image {
	if order == nil {
		order = make([]FuncID, 0, NumFuncs-1)
		for f := FuncID(1); f < NumFuncs; f++ {
			order = append(order, f)
		}
	}
	img := &Image{}
	addr := uint64(codeBase)
	for _, f := range order {
		fp := funcFootprint[f]
		if fp.total == 0 {
			continue
		}
		img.Regions[f] = Region{Fn: f, Addr: addr, TotalBytes: fp.total, HotBytes: fp.hot}
		addr += uint64(fp.total)
		// Real linkers align functions; padding also spreads the image over
		// more iTLB pages, which FDO later undoes for the hot set.
		addr = (addr + 63) &^ 63
	}
	img.Size = addr - codeBase
	return img
}

// Clone returns a deep copy of the image.
func (img *Image) Clone() *Image {
	cp := *img
	return &cp
}

// Region returns the region for fn.
func (img *Image) Region(fn FuncID) *Region { return &img.Regions[fn] }

// Relayout rebuilds the image placing functions in the given order and
// packing (hot/cold-splitting) every function in `packed`. This is the
// primitive AutoFDO uses: hot functions first, contiguous, each reduced to
// its hot footprint; cold remainder is moved out of the fetch path.
func (img *Image) Relayout(order []FuncID, packed map[FuncID]bool) *Image {
	out := &Image{canonical: img.canonical}
	addr := uint64(codeBase)
	seen := make(map[FuncID]bool, NumFuncs)
	place := func(f FuncID) {
		if seen[f] || funcFootprint[f].total == 0 {
			return
		}
		seen[f] = true
		r := img.Regions[f]
		r.Addr = addr
		r.Packed = packed[f]
		out.Regions[f] = r
		addr += uint64(r.FetchSpan())
		addr = (addr + 15) &^ 15 // FDO uses tighter alignment for hot code
	}
	for _, f := range order {
		place(f)
	}
	for f := FuncID(1); f < NumFuncs; f++ {
		place(f)
	}
	out.Size = addr - codeBase
	return out
}
