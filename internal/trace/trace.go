// Package trace defines the abstract execution-event stream emitted by the
// instrumented codec and consumed by the microarchitecture simulator.
//
// The codec does real work on real pixels; alongside that work, its hot
// loops report what a compiled binary would have done — how many ALU
// micro-ops ran in which function, which cache lines of which buffers were
// loaded and stored, and which data-dependent branches went which way. The
// simulator in internal/uarch implements Sink and models caches, TLBs,
// branch predictors and pipeline-slot accounting on top of this stream.
package trace

// FuncID identifies one hot function of the "binary". The set is closed and
// enumerated here so the code image (see Image) can assign every function a
// layout, a size, and a hot-loop footprint.
type FuncID uint8

// Hot functions of the transcoder binary, grouped by pipeline stage. The
// names mirror the corresponding x264/FFmpeg routines.
const (
	FnNone FuncID = iota

	// Encoder analysis.
	FnSAD       // pixel_sad_16x16 and friends
	FnSATD      // pixel_satd (Hadamard)
	FnVariance  // block variance for AQ
	FnMEDia     // diamond integer search driver
	FnMEHex     // hexagon integer search driver
	FnMEUMH     // uneven multi-hexagon search driver
	FnMEESA     // exhaustive search driver
	FnSubpel    // sub-pel refinement
	FnInterp    // half/quarter-pel interpolation filter
	FnIntraPred // intra prediction (all modes)
	FnAnalyse   // macroblock mode decision
	FnLookahead // frame-type decision / scenecut

	// Encoder reconstruction path.
	FnFDCT    // forward 4x4/8x8 integer transform
	FnQuant   // quantization
	FnTrellis // trellis RD quantization
	FnIQuant  // dequantization
	FnIDCT    // inverse transform
	FnMC      // motion compensation copy
	FnDeblock // in-loop deblocking filter

	// Bitstream.
	FnCAVLC     // residual coefficient coding
	FnBitWriter // bit-level output
	FnRC        // rate control

	// Decoder (the first half of a transcode).
	FnDecParse // bitstream parsing
	FnDecMC    // decoder motion compensation
	FnDecIDCT  // decoder inverse transform
	FnDecPred  // decoder intra prediction

	// Harness.
	FnDriver // top-level per-MB driver loop

	NumFuncs
)

var funcNames = [NumFuncs]string{
	FnNone:      "none",
	FnSAD:       "pixel_sad",
	FnSATD:      "pixel_satd",
	FnVariance:  "var_aq",
	FnMEDia:     "me_dia",
	FnMEHex:     "me_hex",
	FnMEUMH:     "me_umh",
	FnMEESA:     "me_esa",
	FnSubpel:    "me_subpel",
	FnInterp:    "mc_interp",
	FnIntraPred: "intra_pred",
	FnAnalyse:   "mb_analyse",
	FnLookahead: "lookahead",
	FnFDCT:      "dct_fwd",
	FnQuant:     "quant",
	FnTrellis:   "trellis",
	FnIQuant:    "dequant",
	FnIDCT:      "dct_inv",
	FnMC:        "mc_copy",
	FnDeblock:   "deblock",
	FnCAVLC:     "cavlc",
	FnBitWriter: "bitwriter",
	FnRC:        "ratecontrol",
	FnDecParse:  "dec_parse",
	FnDecMC:     "dec_mc",
	FnDecIDCT:   "dec_idct",
	FnDecPred:   "dec_pred",
	FnDriver:    "encode_driver",
}

// String returns the symbol-style name of the function.
func (f FuncID) String() string {
	if int(f) < len(funcNames) {
		return funcNames[f]
	}
	return "invalid"
}

// BranchID identifies a static conditional-branch site. Sites are small
// integers unique within a function; the simulator combines them with the
// function's address to index predictor tables.
type BranchID uint16

// Sink receives the execution-event stream. Implementations must be cheap:
// the codec calls these methods at block granularity inside its hot loops.
//
// All Sink methods use the convention that `fn` is the function whose code
// is executing; the simulator charges instruction fetch to that function's
// code-image region.
type Sink interface {
	// Ops reports n ALU/branchless micro-ops executed in fn.
	Ops(fn FuncID, n int)
	// Load reports a read of `bytes` bytes starting at virtual address addr.
	Load(fn FuncID, addr uint64, bytes int)
	// Store reports a write of `bytes` bytes starting at addr.
	Store(fn FuncID, addr uint64, bytes int)
	// Load2D reports a read of a w x h pixel block whose rows are `stride`
	// bytes apart, starting at addr. Equivalent to h Load calls but far
	// cheaper to emit from block kernels.
	Load2D(fn FuncID, addr uint64, w, h, stride int)
	// Store2D is the store counterpart of Load2D.
	Store2D(fn FuncID, addr uint64, w, h, stride int)
	// Branch reports one execution of the data-dependent conditional branch
	// `site` in fn with the given outcome.
	Branch(fn FuncID, site BranchID, taken bool)
	// Loop reports a counted loop at `site` in fn that ran `iters`
	// iterations (its backward branch was taken iters-1 times, then fell
	// through). The simulator models the exit prediction from trip-count
	// regularity.
	Loop(fn FuncID, site BranchID, iters int)
	// Call reports a call (fetch redirect) into fn.
	Call(fn FuncID)
}

// Nop is a Sink that discards every event. Useful when the codec runs
// without a simulator attached.
type Nop struct{}

func (Nop) Ops(FuncID, int)                       {}
func (Nop) Load(FuncID, uint64, int)              {}
func (Nop) Store(FuncID, uint64, int)             {}
func (Nop) Load2D(FuncID, uint64, int, int, int)  {}
func (Nop) Store2D(FuncID, uint64, int, int, int) {}
func (Nop) Branch(FuncID, BranchID, bool)         {}
func (Nop) Loop(FuncID, BranchID, int)            {}
func (Nop) Call(FuncID)                           {}

var _ Sink = Nop{}
