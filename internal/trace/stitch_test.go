package trace

import (
	"bytes"
	"testing"
)

// drive emits a deterministic pseudo-random event mix to a sink, starting
// from the given address cursor, and returns the advanced cursor. The
// addresses deliberately jump across wide ranges so the delta encoding's
// cross-part state is exercised.
func drive(s Sink, events int, addr uint64) uint64 {
	for i := 0; i < events; i++ {
		fn := FuncID(i % int(NumFuncs))
		switch i % 7 {
		case 0:
			s.Ops(fn, 10+i)
		case 1:
			s.Load(fn, addr, 16)
			addr += 64
		case 2:
			s.Store(fn, addr^0xFFFF_0000, 8)
		case 3:
			s.Load2D(fn, addr, 16, 16, 256)
			addr += 4096
		case 4:
			s.Branch(fn, BranchID(i%31), i%3 == 0)
		case 5:
			s.Loop(fn, BranchID(i%31), i%13)
		default:
			s.Call(fn)
		}
	}
	return addr
}

// TestStitchEqualsContinuous pins the stitching contract: recording parts
// separately and stitching them must reproduce, byte for byte, the buffer a
// single continuous Recorder produces for the same event sequence.
func TestStitchEqualsContinuous(t *testing.T) {
	for _, parts := range []int{1, 2, 4, 7} {
		cont := NewRecorder()
		addr := uint64(0x1_0000_0000)
		bufs := make([][]byte, parts)
		for p := 0; p < parts; p++ {
			sep := NewRecorder()
			a2 := drive(sep, 50+p*13, addr)
			drive(cont, 50+p*13, addr)
			addr = a2
			bufs[p] = append([]byte(nil), sep.Bytes()...)
		}
		got, err := Stitch(bufs...)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if !bytes.Equal(got, cont.Bytes()) {
			t.Fatalf("parts=%d: stitched %d bytes != continuous %d bytes", parts, len(got), len(cont.Bytes()))
		}
	}
}

// TestStitchReplayEquivalence checks the stitched buffer replays the exact
// event sequence of the parts in order.
func TestStitchReplayEquivalence(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	drive(a, 40, 0x10_0000)
	drive(b, 30, 0x90_0000)
	stitched, err := Stitch(a.Bytes(), b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	direct := NewRecorder()
	if err := Replay(a.Bytes(), direct); err != nil {
		t.Fatal(err)
	}
	if err := Replay(b.Bytes(), direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stitched, direct.Bytes()) {
		t.Fatal("stitch differs from sequential replay into one recorder")
	}
	if want := a.Events() + b.Events(); countEvents(t, stitched) != want {
		t.Fatalf("stitched event count %d, want %d", countEvents(t, stitched), want)
	}
}

// TestStitchCorrupt rejects a truncated part with a positioned error.
func TestStitchCorrupt(t *testing.T) {
	r := NewRecorder()
	drive(r, 20, 0x1000)
	buf := r.Bytes()
	if _, err := Stitch(buf[:len(buf)-1]); err == nil {
		t.Fatal("want error for truncated part")
	}
}

// countEvents replays a buffer into a counting recorder.
func countEvents(t *testing.T, buf []byte) int {
	t.Helper()
	r := NewRecorder()
	if err := Replay(buf, r); err != nil {
		t.Fatal(err)
	}
	return r.Events()
}
