package trace

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// event is one captured Sink call, used by the collecting sink to compare a
// live stream against its replay.
type event struct {
	Kind    EventKind
	Fn      FuncID
	Addr    uint64
	Site    BranchID
	A, B, C int
	Taken   bool
}

// collector records every Sink call verbatim.
type collector struct{ events []event }

func (c *collector) Ops(fn FuncID, n int) {
	c.events = append(c.events, event{Kind: EvOps, Fn: fn, A: n})
}
func (c *collector) Load(fn FuncID, addr uint64, bytes int) {
	c.events = append(c.events, event{Kind: EvLoad, Fn: fn, Addr: addr, A: bytes})
}
func (c *collector) Store(fn FuncID, addr uint64, bytes int) {
	c.events = append(c.events, event{Kind: EvStore, Fn: fn, Addr: addr, A: bytes})
}
func (c *collector) Load2D(fn FuncID, addr uint64, w, h, stride int) {
	c.events = append(c.events, event{Kind: EvLoad2D, Fn: fn, Addr: addr, A: w, B: h, C: stride})
}
func (c *collector) Store2D(fn FuncID, addr uint64, w, h, stride int) {
	c.events = append(c.events, event{Kind: EvStore2D, Fn: fn, Addr: addr, A: w, B: h, C: stride})
}
func (c *collector) Branch(fn FuncID, site BranchID, taken bool) {
	c.events = append(c.events, event{Kind: EvBranch, Fn: fn, Site: site, Taken: taken})
}
func (c *collector) Loop(fn FuncID, site BranchID, iters int) {
	c.events = append(c.events, event{Kind: EvLoop, Fn: fn, Site: site, A: iters})
}
func (c *collector) Call(fn FuncID) { c.events = append(c.events, event{Kind: EvCall, Fn: fn}) }

// drive issues one event into a Sink.
func (e event) drive(s Sink) {
	switch e.Kind {
	case EvOps:
		s.Ops(e.Fn, e.A)
	case EvLoad:
		s.Load(e.Fn, e.Addr, e.A)
	case EvStore:
		s.Store(e.Fn, e.Addr, e.A)
	case EvLoad2D:
		s.Load2D(e.Fn, e.Addr, e.A, e.B, e.C)
	case EvStore2D:
		s.Store2D(e.Fn, e.Addr, e.A, e.B, e.C)
	case EvBranch:
		s.Branch(e.Fn, e.Site, e.Taken)
	case EvLoop:
		s.Loop(e.Fn, e.Site, e.A)
	case EvCall:
		s.Call(e.Fn)
	}
}

// eventSeq generates arbitrary valid event sequences for testing/quick.
type eventSeq []event

func (eventSeq) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	seq := make(eventSeq, n)
	for i := range seq {
		seq[i] = event{
			Kind:  EventKind(r.Intn(int(EvCall) + 1)),
			Fn:    FuncID(1 + r.Intn(int(NumFuncs)-1)),
			Addr:  r.Uint64(),
			Site:  BranchID(r.Intn(1 << 16)),
			A:     r.Intn(1 << 20),
			B:     r.Intn(1 << 12),
			C:     r.Intn(1 << 16),
			Taken: r.Intn(2) == 1,
		}
	}
	return reflect.ValueOf(seq)
}

// TestRecordReplayRoundTrip is the property test: any event sequence
// survives record -> replay bit-for-bit.
func TestRecordReplayRoundTrip(t *testing.T) {
	prop := func(seq eventSeq) bool {
		rec := NewRecorder()
		var live collector
		for _, e := range seq {
			e.drive(rec)
			e.drive(&live)
		}
		if rec.Events() != len(seq) {
			return false
		}
		var replayed collector
		if err := Replay(rec.Bytes(), &replayed); err != nil {
			t.Logf("replay error: %v", err)
			return false
		}
		return reflect.DeepEqual(live.events, replayed.events)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRecordReplayHandBuilt pins the semantics of each event kind,
// including address deltas that go backwards and wrap.
func TestRecordReplayHandBuilt(t *testing.T) {
	rec := NewRecorder()
	rec.Ops(FnSAD, 42)
	rec.Load(FnDecMC, 0x8_0000_0000, 64)
	rec.Store(FnDecIDCT, 0x1000, 16) // large backwards jump
	rec.Load2D(FnDecMC, 0x8_0000_1000, 16, 16, 1920)
	rec.Store2D(FnDecIDCT, 0x8_0000_2000, 4, 4, 64)
	rec.Branch(FnDecParse, 7, true)
	rec.Branch(FnDecParse, 7, false)
	rec.Loop(FnDeblock, 3, 12)
	rec.Call(FnDecParse)

	var got collector
	if err := Replay(rec.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	want := []event{
		{Kind: EvOps, Fn: FnSAD, A: 42},
		{Kind: EvLoad, Fn: FnDecMC, Addr: 0x8_0000_0000, A: 64},
		{Kind: EvStore, Fn: FnDecIDCT, Addr: 0x1000, A: 16},
		{Kind: EvLoad2D, Fn: FnDecMC, Addr: 0x8_0000_1000, A: 16, B: 16, C: 1920},
		{Kind: EvStore2D, Fn: FnDecIDCT, Addr: 0x8_0000_2000, A: 4, B: 4, C: 64},
		{Kind: EvBranch, Fn: FnDecParse, Site: 7, Taken: true},
		{Kind: EvBranch, Fn: FnDecParse, Site: 7, Taken: false},
		{Kind: EvLoop, Fn: FnDeblock, Site: 3, A: 12},
		{Kind: EvCall, Fn: FnDecParse},
	}
	if !reflect.DeepEqual(got.events, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got.events, want)
	}
	if rec.Events() != len(want) {
		t.Fatalf("Events() = %d, want %d", rec.Events(), len(want))
	}
}

// TestRecorderReset verifies Reset clears state so a reused Recorder's
// buffer stands alone.
func TestRecorderReset(t *testing.T) {
	rec := NewRecorder()
	rec.Load(FnSAD, 0xdeadbeef, 64)
	rec.Reset()
	if rec.Events() != 0 || len(rec.Bytes()) != 0 {
		t.Fatal("reset did not clear recorder")
	}
	rec.Load(FnSAD, 0x100, 8)
	var got collector
	if err := Replay(rec.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.events) != 1 || got.events[0].Addr != 0x100 {
		t.Fatalf("post-reset replay wrong: %+v", got.events)
	}
}

// TestReplayCorruptBuffer verifies truncated buffers error instead of
// panicking.
func TestReplayCorruptBuffer(t *testing.T) {
	rec := NewRecorder()
	rec.Load2D(FnDecMC, 0x8_0000_0000, 16, 16, 1920)
	buf := rec.Bytes()
	for cut := 1; cut < len(buf); cut++ {
		if err := Replay(buf[:cut], &collector{}); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(buf))
		}
	}
}
