package trace

import (
	"encoding/binary"
	"fmt"
)

// Recorder is a Sink that captures the event stream into a compact flat
// buffer so it can be re-driven later with Replay. A transcode's decode
// half is byte-identical across every job that shares a workload and
// decoder options; recording it once and replaying the buffer into each
// job's machine turns an O(decode) cost into an O(events) memcpy-like scan.
//
// Encoding: one tag byte per event — kind in the top three bits, FuncID in
// the low five — followed by the operands as varints. Addresses are
// delta-encoded (zigzag of the difference from the previous address, in
// emission order) because consecutive accesses are near each other; all
// other integer operands are zigzag varints so any int round-trips exactly.
type Recorder struct {
	buf      []byte
	lastAddr uint64
	events   int
}

// EventKind identifies one Sink method in the recorded encoding. Kinds are
// packed into the tag byte's top three bits; they are exported so consumers
// of the parsed representation (uarch.Machine.ReplayEvents) can dispatch on
// Event.Kind without an interface call per event.
type EventKind uint8

const (
	EvOps EventKind = iota
	EvLoad
	EvStore
	EvLoad2D
	EvStore2D
	EvBranch
	EvLoop
	EvCall
)

// The tag byte gives FuncID five bits; widening NumFuncs past 32 must widen
// the encoding too.
var _ [32 - int(NumFuncs)]struct{}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Bytes returns the recorded buffer. The Recorder retains ownership; the
// slice is valid until the next event is recorded.
func (r *Recorder) Bytes() []byte { return r.buf }

// Events returns the number of events recorded.
func (r *Recorder) Events() int { return r.events }

// Reset discards all recorded state, keeping the allocated buffer.
func (r *Recorder) Reset() {
	r.buf = r.buf[:0]
	r.lastAddr = 0
	r.events = 0
}

func (r *Recorder) tag(kind EventKind, fn FuncID) {
	r.buf = append(r.buf, uint8(kind)<<5|uint8(fn)&0x1f)
	r.events++
}

func (r *Recorder) putInt(v int) {
	r.buf = binary.AppendVarint(r.buf, int64(v))
}

func (r *Recorder) putAddr(addr uint64) {
	// The delta is computed in uint64 space so arbitrary jumps (for example
	// bitstream base to frame base) wrap rather than overflow.
	r.buf = binary.AppendVarint(r.buf, int64(addr-r.lastAddr))
	r.lastAddr = addr
}

func (r *Recorder) Ops(fn FuncID, n int) {
	r.tag(EvOps, fn)
	r.putInt(n)
}

func (r *Recorder) Load(fn FuncID, addr uint64, bytes int) {
	r.tag(EvLoad, fn)
	r.putAddr(addr)
	r.putInt(bytes)
}

func (r *Recorder) Store(fn FuncID, addr uint64, bytes int) {
	r.tag(EvStore, fn)
	r.putAddr(addr)
	r.putInt(bytes)
}

func (r *Recorder) Load2D(fn FuncID, addr uint64, w, h, stride int) {
	r.tag(EvLoad2D, fn)
	r.putAddr(addr)
	r.putInt(w)
	r.putInt(h)
	r.putInt(stride)
}

func (r *Recorder) Store2D(fn FuncID, addr uint64, w, h, stride int) {
	r.tag(EvStore2D, fn)
	r.putAddr(addr)
	r.putInt(w)
	r.putInt(h)
	r.putInt(stride)
}

func (r *Recorder) Branch(fn FuncID, site BranchID, taken bool) {
	r.tag(EvBranch, fn)
	v := uint64(site) << 1
	if taken {
		v |= 1
	}
	r.buf = binary.AppendUvarint(r.buf, v)
}

func (r *Recorder) Loop(fn FuncID, site BranchID, iters int) {
	r.tag(EvLoop, fn)
	r.buf = binary.AppendUvarint(r.buf, uint64(site))
	r.putInt(iters)
}

func (r *Recorder) Call(fn FuncID) {
	r.tag(EvCall, fn)
}

var _ Sink = (*Recorder)(nil)

// replayReader walks a recorded buffer. It tracks the byte offset and the
// index of the event being decoded so corrupt-trace errors say where in the
// buffer — and how far into the event stream — the damage is.
type replayReader struct {
	buf      []byte
	pos      int
	event    int // index of the event currently being decoded
	lastAddr uint64
}

// corrupt builds the error for a varint that failed to decode: n == 0 means
// the buffer ended mid-operand (truncation), n < 0 means the encoded value
// overflowed 64 bits (corruption).
func (p *replayReader) corrupt(what string, n int) error {
	if n == 0 {
		return fmt.Errorf("trace: truncated %s at byte offset %d (event %d, buffer %d bytes)",
			what, p.pos, p.event, len(p.buf))
	}
	return fmt.Errorf("trace: %s overflows 64 bits at byte offset %d (event %d)",
		what, p.pos, p.event)
}

func (p *replayReader) int(what string) (int, error) {
	v, n := binary.Varint(p.buf[p.pos:])
	if n <= 0 {
		return 0, p.corrupt(what, n)
	}
	p.pos += n
	return int(v), nil
}

func (p *replayReader) uint(what string) (uint64, error) {
	v, n := binary.Uvarint(p.buf[p.pos:])
	if n <= 0 {
		return 0, p.corrupt(what, n)
	}
	p.pos += n
	return v, nil
}

func (p *replayReader) addr() (uint64, error) {
	v, n := binary.Varint(p.buf[p.pos:])
	if n <= 0 {
		return 0, p.corrupt("address delta", n)
	}
	p.pos += n
	p.lastAddr += uint64(v)
	return p.lastAddr, nil
}

// Replay re-drives every event in a buffer produced by Recorder into sink,
// in recording order. A sink fed by Replay observes exactly the calls the
// Recorder observed, so a deterministic consumer (such as uarch.Machine)
// reaches exactly the state it would have reached live.
func Replay(buf []byte, sink Sink) error {
	p := replayReader{buf: buf}
	for p.pos < len(buf) {
		tag := buf[p.pos]
		p.pos++
		kind, fn := EventKind(tag>>5), FuncID(tag&0x1f)
		switch kind {
		case EvOps:
			n, err := p.int("operand")
			if err != nil {
				return err
			}
			sink.Ops(fn, n)
		case EvLoad, EvStore:
			addr, err := p.addr()
			if err != nil {
				return err
			}
			bytes, err := p.int("operand")
			if err != nil {
				return err
			}
			if kind == EvLoad {
				sink.Load(fn, addr, bytes)
			} else {
				sink.Store(fn, addr, bytes)
			}
		case EvLoad2D, EvStore2D:
			addr, err := p.addr()
			if err != nil {
				return err
			}
			w, err := p.int("operand")
			if err != nil {
				return err
			}
			h, err := p.int("operand")
			if err != nil {
				return err
			}
			stride, err := p.int("operand")
			if err != nil {
				return err
			}
			if kind == EvLoad2D {
				sink.Load2D(fn, addr, w, h, stride)
			} else {
				sink.Store2D(fn, addr, w, h, stride)
			}
		case EvBranch:
			v, err := p.uint("branch operand")
			if err != nil {
				return err
			}
			sink.Branch(fn, BranchID(v>>1), v&1 == 1)
		case EvLoop:
			site, err := p.uint("loop site")
			if err != nil {
				return err
			}
			iters, err := p.int("operand")
			if err != nil {
				return err
			}
			sink.Loop(fn, BranchID(site), iters)
		case EvCall:
			sink.Call(fn)
		default:
			return fmt.Errorf("trace: unknown event kind %d at byte offset %d (event %d)", kind, p.pos-1, p.event)
		}
		p.event++
	}
	return nil
}
