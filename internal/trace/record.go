package trace

import (
	"encoding/binary"
	"fmt"
)

// Recorder is a Sink that captures the event stream into a compact flat
// buffer so it can be re-driven later with Replay. A transcode's decode
// half is byte-identical across every job that shares a workload and
// decoder options; recording it once and replaying the buffer into each
// job's machine turns an O(decode) cost into an O(events) memcpy-like scan.
//
// Encoding: one tag byte per event — kind in the top three bits, FuncID in
// the low five — followed by the operands as varints. Addresses are
// delta-encoded (zigzag of the difference from the previous address, in
// emission order) because consecutive accesses are near each other; all
// other integer operands are zigzag varints so any int round-trips exactly.
type Recorder struct {
	buf      []byte
	lastAddr uint64
	events   int
}

// Event kinds, packed into the tag byte's top three bits.
const (
	evOps uint8 = iota
	evLoad
	evStore
	evLoad2D
	evStore2D
	evBranch
	evLoop
	evCall
)

// The tag byte gives FuncID five bits; widening NumFuncs past 32 must widen
// the encoding too.
var _ [32 - int(NumFuncs)]struct{}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Bytes returns the recorded buffer. The Recorder retains ownership; the
// slice is valid until the next event is recorded.
func (r *Recorder) Bytes() []byte { return r.buf }

// Events returns the number of events recorded.
func (r *Recorder) Events() int { return r.events }

// Reset discards all recorded state, keeping the allocated buffer.
func (r *Recorder) Reset() {
	r.buf = r.buf[:0]
	r.lastAddr = 0
	r.events = 0
}

func (r *Recorder) tag(kind uint8, fn FuncID) {
	r.buf = append(r.buf, kind<<5|uint8(fn)&0x1f)
	r.events++
}

func (r *Recorder) putInt(v int) {
	r.buf = binary.AppendVarint(r.buf, int64(v))
}

func (r *Recorder) putAddr(addr uint64) {
	// The delta is computed in uint64 space so arbitrary jumps (for example
	// bitstream base to frame base) wrap rather than overflow.
	r.buf = binary.AppendVarint(r.buf, int64(addr-r.lastAddr))
	r.lastAddr = addr
}

func (r *Recorder) Ops(fn FuncID, n int) {
	r.tag(evOps, fn)
	r.putInt(n)
}

func (r *Recorder) Load(fn FuncID, addr uint64, bytes int) {
	r.tag(evLoad, fn)
	r.putAddr(addr)
	r.putInt(bytes)
}

func (r *Recorder) Store(fn FuncID, addr uint64, bytes int) {
	r.tag(evStore, fn)
	r.putAddr(addr)
	r.putInt(bytes)
}

func (r *Recorder) Load2D(fn FuncID, addr uint64, w, h, stride int) {
	r.tag(evLoad2D, fn)
	r.putAddr(addr)
	r.putInt(w)
	r.putInt(h)
	r.putInt(stride)
}

func (r *Recorder) Store2D(fn FuncID, addr uint64, w, h, stride int) {
	r.tag(evStore2D, fn)
	r.putAddr(addr)
	r.putInt(w)
	r.putInt(h)
	r.putInt(stride)
}

func (r *Recorder) Branch(fn FuncID, site BranchID, taken bool) {
	r.tag(evBranch, fn)
	v := uint64(site) << 1
	if taken {
		v |= 1
	}
	r.buf = binary.AppendUvarint(r.buf, v)
}

func (r *Recorder) Loop(fn FuncID, site BranchID, iters int) {
	r.tag(evLoop, fn)
	r.buf = binary.AppendUvarint(r.buf, uint64(site))
	r.putInt(iters)
}

func (r *Recorder) Call(fn FuncID) {
	r.tag(evCall, fn)
}

var _ Sink = (*Recorder)(nil)

// replayReader walks a recorded buffer.
type replayReader struct {
	buf      []byte
	pos      int
	lastAddr uint64
}

func (p *replayReader) int() (int, error) {
	v, n := binary.Varint(p.buf[p.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: corrupt varint at offset %d", p.pos)
	}
	p.pos += n
	return int(v), nil
}

func (p *replayReader) uint() (uint64, error) {
	v, n := binary.Uvarint(p.buf[p.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: corrupt uvarint at offset %d", p.pos)
	}
	p.pos += n
	return v, nil
}

func (p *replayReader) addr() (uint64, error) {
	v, n := binary.Varint(p.buf[p.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: corrupt address delta at offset %d", p.pos)
	}
	p.pos += n
	p.lastAddr += uint64(v)
	return p.lastAddr, nil
}

// Replay re-drives every event in a buffer produced by Recorder into sink,
// in recording order. A sink fed by Replay observes exactly the calls the
// Recorder observed, so a deterministic consumer (such as uarch.Machine)
// reaches exactly the state it would have reached live.
func Replay(buf []byte, sink Sink) error {
	p := replayReader{buf: buf}
	for p.pos < len(buf) {
		tag := buf[p.pos]
		p.pos++
		kind, fn := tag>>5, FuncID(tag&0x1f)
		switch kind {
		case evOps:
			n, err := p.int()
			if err != nil {
				return err
			}
			sink.Ops(fn, n)
		case evLoad, evStore:
			addr, err := p.addr()
			if err != nil {
				return err
			}
			bytes, err := p.int()
			if err != nil {
				return err
			}
			if kind == evLoad {
				sink.Load(fn, addr, bytes)
			} else {
				sink.Store(fn, addr, bytes)
			}
		case evLoad2D, evStore2D:
			addr, err := p.addr()
			if err != nil {
				return err
			}
			w, err := p.int()
			if err != nil {
				return err
			}
			h, err := p.int()
			if err != nil {
				return err
			}
			stride, err := p.int()
			if err != nil {
				return err
			}
			if kind == evLoad2D {
				sink.Load2D(fn, addr, w, h, stride)
			} else {
				sink.Store2D(fn, addr, w, h, stride)
			}
		case evBranch:
			v, err := p.uint()
			if err != nil {
				return err
			}
			sink.Branch(fn, BranchID(v>>1), v&1 == 1)
		case evLoop:
			site, err := p.uint()
			if err != nil {
				return err
			}
			iters, err := p.int()
			if err != nil {
				return err
			}
			sink.Loop(fn, BranchID(site), iters)
		case evCall:
			sink.Call(fn)
		default:
			return fmt.Errorf("trace: unknown event kind %d at offset %d", kind, p.pos-1)
		}
	}
	return nil
}
