package trace

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseReplayEquivalence is the property test: for any event sequence,
// Parse+ReplayParsed and ReplayMulti observe exactly the calls Replay
// observes.
func TestParseReplayEquivalence(t *testing.T) {
	prop := func(seq eventSeq) bool {
		rec := NewRecorder()
		for _, e := range seq {
			e.drive(rec)
		}
		var ref collector
		if err := Replay(rec.Bytes(), &ref); err != nil {
			t.Logf("replay error: %v", err)
			return false
		}
		b, err := Parse(rec.Bytes())
		if err != nil {
			t.Logf("parse error: %v", err)
			return false
		}
		if b.Len() != len(seq) {
			t.Logf("Len() = %d, want %d", b.Len(), len(seq))
			return false
		}
		var parsed collector
		ReplayParsed(b, &parsed)
		if !reflect.DeepEqual(ref.events, parsed.events) {
			t.Logf("ReplayParsed diverged")
			return false
		}
		var m1, m2 collector
		if err := ReplayMulti(rec.Bytes(), &m1, &m2); err != nil {
			t.Logf("multi error: %v", err)
			return false
		}
		return reflect.DeepEqual(ref.events, m1.events) && reflect.DeepEqual(ref.events, m2.events)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestParseFromReuse verifies the slab is reused across parses and that
// Reset keeps capacity.
func TestParseFromReuse(t *testing.T) {
	rec := NewRecorder()
	for i := 0; i < 64; i++ {
		rec.Load(FnDecMC, uint64(i)*64, 8)
	}
	var b EventBuf
	if err := ParseFrom(rec.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 64 {
		t.Fatalf("Len() = %d, want 64", b.Len())
	}
	slab := &b.events[0]
	rec.Reset()
	rec.Ops(FnSAD, 9)
	if err := ParseFrom(rec.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 || &b.events[0] != slab {
		t.Fatal("ParseFrom did not reuse the slab")
	}
	if b.SizeBytes() < 64*eventSize {
		t.Fatalf("SizeBytes() = %d, want >= %d", b.SizeBytes(), 64*eventSize)
	}
	b.Reset()
	if b.Len() != 0 || cap(b.events) < 64 {
		t.Fatal("Reset dropped the slab")
	}
}

// TestParseCorruptBuffer verifies truncations error with positioned
// context, identically to Replay.
func TestParseCorruptBuffer(t *testing.T) {
	rec := NewRecorder()
	rec.Load(FnDecMC, 0x1000, 64)
	rec.Load2D(FnDecMC, 0x8_0000_0000, 16, 16, 1920)
	buf := rec.Bytes()
	for cut := 1; cut < len(buf); cut++ {
		refErr := Replay(buf[:cut], &collector{})
		_, parseErr := Parse(buf[:cut])
		if (refErr == nil) != (parseErr == nil) {
			t.Fatalf("cut %d: Replay err %v, Parse err %v", cut, refErr, parseErr)
		}
		if refErr != nil && refErr.Error() != parseErr.Error() {
			t.Fatalf("cut %d: error mismatch:\n replay: %v\n parse:  %v", cut, refErr, parseErr)
		}
	}
}

// TestReplayErrorPosition pins the positioned error format: byte offset
// and event index must both appear.
func TestReplayErrorPosition(t *testing.T) {
	rec := NewRecorder()
	rec.Ops(FnSAD, 1)             // event 0, 2 bytes
	rec.Load(FnDecMC, 0x1000, 64) // event 1
	buf := rec.Bytes()[:3]        // cut inside event 1's address delta
	err := Replay(buf, &collector{})
	if err == nil {
		t.Fatal("truncated buffer accepted")
	}
	msg := err.Error()
	for _, want := range []string{"truncated", "byte offset 3", "event 1"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	// Overflowing varint: 11 continuation bytes after an Ops tag (ten
	// bytes would read as truncation; the 11th trips 64-bit overflow).
	over := append([]byte{uint8(EvOps) << 5}, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80)
	err = Replay(over, &collector{})
	if err == nil || !strings.Contains(err.Error(), "overflows") {
		t.Fatalf("overflow not reported: %v", err)
	}
}

// FuzzParseReplay feeds arbitrary byte buffers through both decoders:
// they must agree on error/success, on error text, and on the observed
// event streams.
func FuzzParseReplay(f *testing.F) {
	rec := NewRecorder()
	rec.Ops(FnSAD, 42)
	rec.Load(FnDecMC, 0x8_0000_0000, 64)
	rec.Load2D(FnDecMC, 0x8_0000_1000, 16, 16, 1920)
	rec.Branch(FnDecParse, 7, true)
	rec.Loop(FnDeblock, 3, 12)
	rec.Call(FnDecParse)
	f.Add(append([]byte(nil), rec.Bytes()...))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, buf []byte) {
		var ref collector
		refErr := Replay(buf, &ref)
		b, parseErr := Parse(buf)
		if (refErr == nil) != (parseErr == nil) {
			t.Fatalf("Replay err %v, Parse err %v", refErr, parseErr)
		}
		if refErr != nil {
			if refErr.Error() != parseErr.Error() {
				t.Fatalf("error mismatch:\n replay: %v\n parse:  %v", refErr, parseErr)
			}
			return
		}
		var parsed collector
		ReplayParsed(b, &parsed)
		if !reflect.DeepEqual(ref.events, parsed.events) {
			t.Fatalf("ReplayParsed diverged:\n ref    %+v\n parsed %+v", ref.events, parsed.events)
		}
		var m1, m2 collector
		if err := ReplayMulti(buf, &m1, &m2); err != nil {
			t.Fatalf("ReplayMulti err: %v", err)
		}
		if !reflect.DeepEqual(ref.events, m1.events) || !reflect.DeepEqual(ref.events, m2.events) {
			t.Fatal("ReplayMulti diverged")
		}
	})
}
