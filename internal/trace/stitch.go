package trace

import "fmt"

// Stitch concatenates independently recorded event buffers into one
// canonical recording, as if every event had been recorded through a single
// Recorder in part order. Plain byte concatenation would be wrong: the
// Recorder delta-encodes addresses against the previous event's address, so
// the first address of part k+1 must be re-encoded against the last address
// of part k. Stitch therefore replays every part into a fresh Recorder,
// which re-derives each delta in the combined stream.
//
// The result is byte-identical to a continuous recording of the same event
// sequence (pinned by TestStitchEqualsContinuous), which is what lets
// segment-parallel encodes — each recording its own trace — reassemble the
// exact trace a serial segmented encode produces.
func Stitch(parts ...[]byte) ([]byte, error) {
	r := NewRecorder()
	for i, p := range parts {
		if err := Replay(p, r); err != nil {
			return nil, fmt.Errorf("trace: stitch part %d: %w", i, err)
		}
	}
	// Recorder retains buffer ownership; hand the caller a private copy.
	return append([]byte(nil), r.Bytes()...), nil
}
