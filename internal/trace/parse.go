package trace

// Pre-parsed trace representation.
//
// Replay decodes the varint stream once per sink: a sweep that replays one
// decode trace into N machine configurations pays N full varint decodes and
// N×events virtual Sink dispatches. Parse performs the decode exactly once
// into a flat []Event slab; ReplayParsed then fans the fixed-width events
// out to any number of consumers with a plain slice walk, and
// uarch.Machine.ReplayEvents consumes the slab with no interface call at
// all. Replay remains the pinned reference semantics — every consumer of
// the parsed form must be observationally identical to it, which the
// equivalence and fuzz tests in parse_test.go enforce.

// Event is one decoded Sink call in fixed-width form. Operand fields are
// wide enough to hold anything the varint encoding can carry, so parsing
// never loses information relative to Replay:
//
//	Ops              A=n
//	Load/Store       Addr, A=bytes
//	Load2D/Store2D   Addr, A=w, B=h, C=stride
//	Branch           Site, Taken
//	Loop             Site, A=iters
//	Call             (no operands)
type Event struct {
	Addr  uint64
	A     int64
	B, C  int64
	Site  BranchID
	Kind  EventKind
	Fn    FuncID
	Taken bool
}

// eventSize is the in-memory footprint of one Event (40 bytes: four 8-byte
// operands plus the packed tag fields and padding).
const eventSize = 40

// EventBuf is a parsed trace: a reusable slab of fixed-width events.
// The zero value is empty and ready for ParseFrom.
type EventBuf struct {
	events []Event
}

// Len returns the number of parsed events.
func (b *EventBuf) Len() int { return len(b.events) }

// Events returns the parsed event slice. The EventBuf retains ownership;
// the slice is valid until the next ParseFrom into this buffer.
func (b *EventBuf) Events() []Event { return b.events }

// SizeBytes reports the slab's capacity footprint, for cache accounting.
func (b *EventBuf) SizeBytes() int { return cap(b.events) * eventSize }

// Reset empties the buffer, keeping the slab for reuse.
func (b *EventBuf) Reset() { b.events = b.events[:0] }

// Parse decodes a buffer produced by Recorder into a fresh EventBuf.
func Parse(buf []byte) (*EventBuf, error) {
	var b EventBuf
	if err := ParseFrom(buf, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// ParseFrom decodes buf into dst, reusing dst's slab. On error dst holds
// the events decoded before the corruption, and the error carries the byte
// offset and event index exactly as Replay would report them.
func ParseFrom(buf []byte, dst *EventBuf) error {
	dst.events = dst.events[:0]
	p := replayReader{buf: buf}
	for p.pos < len(buf) {
		tag := buf[p.pos]
		p.pos++
		e := Event{Kind: EventKind(tag >> 5), Fn: FuncID(tag & 0x1f)}
		switch e.Kind {
		case EvOps:
			n, err := p.int("operand")
			if err != nil {
				return err
			}
			e.A = int64(n)
		case EvLoad, EvStore:
			addr, err := p.addr()
			if err != nil {
				return err
			}
			bytes, err := p.int("operand")
			if err != nil {
				return err
			}
			e.Addr, e.A = addr, int64(bytes)
		case EvLoad2D, EvStore2D:
			addr, err := p.addr()
			if err != nil {
				return err
			}
			w, err := p.int("operand")
			if err != nil {
				return err
			}
			h, err := p.int("operand")
			if err != nil {
				return err
			}
			stride, err := p.int("operand")
			if err != nil {
				return err
			}
			e.Addr, e.A, e.B, e.C = addr, int64(w), int64(h), int64(stride)
		case EvBranch:
			v, err := p.uint("branch operand")
			if err != nil {
				return err
			}
			e.Site, e.Taken = BranchID(v>>1), v&1 == 1
		case EvLoop:
			site, err := p.uint("loop site")
			if err != nil {
				return err
			}
			iters, err := p.int("operand")
			if err != nil {
				return err
			}
			e.Site, e.A = BranchID(site), int64(iters)
		case EvCall:
			// no operands
		}
		dst.events = append(dst.events, e)
		p.event++
	}
	return nil
}

// ReplayParsed re-drives a parsed trace into sink, in recording order. It
// is observationally identical to Replay on the buffer the EventBuf was
// parsed from; parsing already validated the encoding, so there is no
// error to return.
func ReplayParsed(b *EventBuf, sink Sink) {
	for i := range b.events {
		e := &b.events[i]
		switch e.Kind {
		case EvOps:
			sink.Ops(e.Fn, int(e.A))
		case EvLoad:
			sink.Load(e.Fn, e.Addr, int(e.A))
		case EvStore:
			sink.Store(e.Fn, e.Addr, int(e.A))
		case EvLoad2D:
			sink.Load2D(e.Fn, e.Addr, int(e.A), int(e.B), int(e.C))
		case EvStore2D:
			sink.Store2D(e.Fn, e.Addr, int(e.A), int(e.B), int(e.C))
		case EvBranch:
			sink.Branch(e.Fn, e.Site, e.Taken)
		case EvLoop:
			sink.Loop(e.Fn, e.Site, int(e.A))
		case EvCall:
			sink.Call(e.Fn)
		}
	}
}

// ReplayMulti replays a recorded buffer into every sink, decoding each
// event exactly once. Each sink observes the same call sequence Replay
// would deliver; sinks are driven one after another in argument order,
// each over the complete stream.
func ReplayMulti(buf []byte, sinks ...Sink) error {
	var b EventBuf
	if err := ParseFrom(buf, &b); err != nil {
		return err
	}
	for _, s := range sinks {
		ReplayParsed(&b, s)
	}
	return nil
}
