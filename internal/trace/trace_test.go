package trace

import (
	"testing"
	"testing/quick"
)

func TestImageRegionsDisjointAndOrdered(t *testing.T) {
	img := NewImage(nil)
	var prevEnd uint64
	for fn := FuncID(1); fn < NumFuncs; fn++ {
		r := img.Region(fn)
		if r.TotalBytes == 0 {
			t.Fatalf("%v has no footprint", fn)
		}
		if r.Addr < prevEnd {
			t.Fatalf("%v at %#x overlaps previous region ending %#x", fn, r.Addr, prevEnd)
		}
		prevEnd = r.Addr + uint64(r.TotalBytes)
	}
	if img.Size == 0 {
		t.Fatal("image size zero")
	}
}

func TestFetchSpanSemantics(t *testing.T) {
	r := Region{TotalBytes: 8000, HotBytes: 1000}
	if got := r.FetchSpan(); got != 2000 {
		t.Fatalf("unpacked span %d, want 2*hot", got)
	}
	r.Packed = true
	if got := r.FetchSpan(); got != 1000 {
		t.Fatalf("packed span %d, want hot", got)
	}
	// Span never exceeds the function size.
	small := Region{TotalBytes: 1200, HotBytes: 1000}
	if got := small.FetchSpan(); got != 1200 {
		t.Fatalf("span %d exceeds total", got)
	}
}

func TestRelayoutOrdersAndPacks(t *testing.T) {
	img := NewImage(nil)
	order := []FuncID{FnCAVLC, FnSAD, FnDeblock}
	packed := map[FuncID]bool{FnCAVLC: true, FnSAD: true}
	out := img.Relayout(order, packed)

	// The first three functions appear in the requested order.
	if !(out.Region(FnCAVLC).Addr < out.Region(FnSAD).Addr &&
		out.Region(FnSAD).Addr < out.Region(FnDeblock).Addr) {
		t.Fatal("relayout did not honour order")
	}
	if !out.Region(FnCAVLC).Packed || !out.Region(FnSAD).Packed {
		t.Fatal("packing flags lost")
	}
	if out.Region(FnDeblock).Packed {
		t.Fatal("unpacked function marked packed")
	}
	// Every function still present and disjoint.
	seen := map[uint64]bool{}
	for fn := FuncID(1); fn < NumFuncs; fn++ {
		a := out.Region(fn).Addr
		if seen[a] {
			t.Fatalf("duplicate address %#x", a)
		}
		seen[a] = true
	}
	// Packing shrinks the hot image.
	if out.Size >= img.Size {
		t.Fatalf("packed image (%d) not smaller than original (%d)", out.Size, img.Size)
	}
	// The original image is untouched.
	if img.Region(FnCAVLC).Packed {
		t.Fatal("relayout mutated its input")
	}
}

func TestBranchCanonical(t *testing.T) {
	img := NewImage(nil)
	if img.BranchCanonical(FnSAD, 3) {
		t.Fatal("fresh image has canonical branches")
	}
	img.SetCanonical(FnSAD, 3)
	if !img.BranchCanonical(FnSAD, 3) {
		t.Fatal("SetCanonical lost")
	}
	if img.BranchCanonical(FnSAD, 4) || img.BranchCanonical(FnSATD, 3) {
		t.Fatal("canonical leaked to other sites")
	}
	// Relayout preserves canonical marks.
	out := img.Relayout([]FuncID{FnSATD}, nil)
	if !out.BranchCanonical(FnSAD, 3) {
		t.Fatal("relayout dropped canonical marks")
	}
}

func TestFuncIDStrings(t *testing.T) {
	if FnSAD.String() != "pixel_sad" {
		t.Fatalf("FnSAD = %q", FnSAD.String())
	}
	if FuncID(200).String() != "invalid" {
		t.Fatal("out-of-range FuncID should stringify as invalid")
	}
	seen := map[string]bool{}
	for fn := FuncID(1); fn < NumFuncs; fn++ {
		s := fn.String()
		if s == "" || s == "invalid" || seen[s] {
			t.Fatalf("bad or duplicate name %q for %d", s, fn)
		}
		seen[s] = true
	}
}

func TestNopSinkAcceptsEverything(t *testing.T) {
	var s Sink = Nop{}
	f := func(fn uint8, addr uint64, n uint16, taken bool) bool {
		id := FuncID(fn % uint8(NumFuncs))
		s.Ops(id, int(n))
		s.Load(id, addr, int(n))
		s.Store(id, addr, int(n))
		s.Load2D(id, addr, int(n%64), int(n%16), 512)
		s.Store2D(id, addr, int(n%64), int(n%16), 512)
		s.Branch(id, BranchID(n), taken)
		s.Loop(id, BranchID(n), int(n%100))
		s.Call(id)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
