// Package transcoding is the public API of this reproduction of "CPU
// Microarchitectural Performance Characterization of Cloud Video
// Transcoding" (IISWC 2020). It bundles three layers behind one import:
//
//   - a from-scratch H.264-class video codec with the full x264 tuning
//     surface the paper sweeps (crf, refs, the ten presets, six
//     rate-control modes, dia/hex/umh/esa/tesa motion estimation, trellis
//     quantization, B frames, deblocking);
//   - a deterministic synthetic workload generator reproducing the vbench
//     catalog (Table I) by entropy, resolution and frame rate;
//   - a Sniper-style microarchitecture simulator (caches, iTLB, Pentium-M
//     and TAGE branch predictors, interval pipeline model) with VTune-style
//     Top-down profiling, the AutoFDO and Graphite optimization models, and
//     the characterization-driven smart scheduler.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package transcoding

import (
	"context"
	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/opt/autofdo"
	"repro/internal/opt/graphite"
	"repro/internal/perf"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/uarch"
	"repro/internal/vbench"
)

// Core types re-exported from the implementation packages.
type (
	// Frame is a YUV 4:2:0 picture.
	Frame = frame.Frame
	// Options is the encoder configuration (crf, refs, preset options...).
	Options = codec.Options
	// Preset names one of the ten x264 presets.
	Preset = codec.Preset
	// Stats summarizes an encode (per-frame bits, PSNR, types).
	Stats = codec.Stats
	// Tuning holds Graphite-style loop-structure switches.
	Tuning = codec.Tuning
	// Report is a VTune/perf-style profile: Top-down slots and MPKI.
	Report = perf.Report
	// Config is a microarchitecture configuration (a Table IV row).
	Config = uarch.Config
	// VideoInfo is one vbench catalog entry (a Table I row).
	VideoInfo = vbench.VideoInfo
	// Workload selects synthetic content for an experiment.
	Workload = core.Workload
	// Job is one transcoding run to simulate.
	Job = core.Job
	// Point is one sweep sample.
	Point = core.Point
	// Points is a sweep result with error-inspection helpers (FirstErr,
	// Failed).
	Points = core.Points
	// SweepOpts adjusts sweep execution (e.g. the replay-cache escape hatch).
	SweepOpts = core.SweepOpts
	// Plan is a declarative sweep for the generic Sweep engine: warm-up
	// targets plus an indexed point builder.
	Plan = core.Plan
	// WarmTarget names one (workload, decoder, config) combination a Plan
	// pre-warms before its points run.
	WarmTarget = core.WarmTarget
	// MachineResult carries the raw counter state of a finished simulation.
	MachineResult = uarch.Result
	// DecoderOptions configure decode-side instrumentation and tuning.
	DecoderOptions = codec.DecoderOptions
	// Task is one schedulable transcoding job (a Table III row).
	Task = sched.Task
	// GraphiteFlags mirror the paper's GCC flag set.
	GraphiteFlags = graphite.Flags
)

// Presets in speed order, fastest first.
var Presets = codec.Presets

// Rate-control modes.
const (
	RCCRF  = codec.RCCRF
	RCCQP  = codec.RCCQP
	RCABR  = codec.RCABR
	RCABR2 = codec.RCABR2
	RCCBR  = codec.RCCBR
	RCVBV  = codec.RCVBV
)

// Videos returns the vbench catalog (Table I).
func Videos() []VideoInfo { return vbench.Catalog }

// VideoByName resolves a catalog short name (including "bbb").
func VideoByName(name string) (VideoInfo, error) { return vbench.ByName(name) }

// DefaultOptions returns medium-preset options with CRF 23, the paper's
// profiling defaults.
func DefaultOptions() Options { return codec.Defaults() }

// ApplyPreset overwrites the preset-controlled fields of o.
func ApplyPreset(o *Options, p Preset) error { return codec.ApplyPreset(o, p) }

// Synthesize generates `frames` frames of the named catalog video, reduced
// by the given scale factor (1 = full resolution, 0 = full resolution).
func Synthesize(video string, frames, scale int) ([]*Frame, error) {
	info, err := vbench.ByName(video)
	if err != nil {
		return nil, err
	}
	src := vbench.NewSource(info, vbench.SourceOptions{Scale: scale})
	out := make([]*Frame, frames)
	for i := range out {
		out[i] = src.Frame(i)
	}
	return out, nil
}

// Encode compresses frames with the given options and returns the
// bitstream and statistics.
func Encode(frames []*Frame, fps int, opt Options) ([]byte, *Stats, error) {
	if len(frames) == 0 {
		return nil, nil, codec.ErrNoFrames
	}
	enc, err := codec.NewEncoder(frames[0].Width, frames[0].Height, fps, opt, nil)
	if err != nil {
		return nil, nil, err
	}
	return enc.EncodeAll(frames)
}

// StreamInfo describes a parsed bitstream.
type StreamInfo = codec.Info

// Decode decompresses a bitstream into display-order frames.
func Decode(stream []byte) ([]*Frame, *StreamInfo, error) {
	return codec.NewDecoder(codec.DecoderOptions{}, nil).Decode(stream)
}

// Transcode decodes a bitstream and re-encodes it with new options — the
// paper's workload, end to end.
func Transcode(stream []byte, opt Options) ([]byte, *Stats, error) {
	frames, info, err := Decode(stream)
	if err != nil {
		return nil, nil, err
	}
	return Encode(frames, info.FPS, opt)
}

// PSNR returns the global peak signal-to-noise ratio between two frames.
func PSNR(a, b *Frame) float64 { return frame.PSNR(a, b) }

// SSIM returns the luma structural-similarity index between two frames.
func SSIM(a, b *Frame) float64 { return frame.SSIM(a, b) }

// WriteY4M writes frames as a YUV4MPEG2 stream for external toolchains
// (ffmpeg, mpv, VMAF).
func WriteY4M(w io.Writer, frames []*Frame, fps int) error {
	return frame.WriteY4M(w, frames, fps)
}

// ReadY4M parses a YUV4MPEG2 stream (4:2:0, dimensions multiple of 16).
func ReadY4M(r io.Reader) ([]*Frame, int, error) { return frame.ReadY4M(r) }

// --- simulation / characterization -------------------------------------------

// BaselineConfig returns the Table IV baseline (Gainestown-like) machine.
func BaselineConfig() Config { return uarch.Baseline() }

// Configs returns all five Table IV configurations.
func Configs() []Config { return uarch.TableIV() }

// ConfigByName resolves a Table IV configuration name.
func ConfigByName(name string) (Config, bool) { return uarch.ByName(name) }

// Profile simulates one transcoding job and returns its profile and codec
// statistics. Canceling ctx aborts the simulation between its decode and
// encode stages.
func Profile(ctx context.Context, job Job) (*Report, *Stats, error) {
	res, err := core.Run(ctx, job)
	if err != nil {
		return nil, nil, err
	}
	return res.Report, res.Stats, nil
}

// Sweep runs an arbitrary declarative sweep Plan on the shared execution
// engine — the primitive under SweepCRFRefs, SweepPresets and SweepVideos,
// exposed for custom grids.
func Sweep(ctx context.Context, p Plan) Points {
	return core.Sweep(ctx, p)
}

// SweepCRFRefs profiles every (crf, refs) combination on one video
// (Figures 3-5). Canceling ctx returns promptly: finished points keep
// their results, unstarted ones carry ctx's error.
func SweepCRFRefs(ctx context.Context, w Workload, base Options, cfg Config, crfs, refs []int) Points {
	return core.SweepCRFRefs(ctx, w, base, cfg, crfs, refs)
}

// SweepCRFRefsWith is SweepCRFRefs with explicit execution options, e.g.
// SweepOpts{NoReplayCache: true} to re-simulate every point's decode live
// instead of replaying the cached decode trace, or
// SweepOpts{NoAnalysisCache: true} to run every point's lookahead live
// instead of reusing the shared per-video analysis artifact.
func SweepCRFRefsWith(ctx context.Context, w Workload, base Options, cfg Config, crfs, refs []int, opts SweepOpts) Points {
	return core.SweepCRFRefsWith(ctx, w, base, cfg, crfs, refs, opts)
}

// DecodedMezzanine returns the cached decoded frames and recorded decode
// event trace of a workload's mezzanine (built on first use). Both return
// values are shared cache state and must be treated as read-only. A
// canceled ctx detaches the caller without poisoning the cache: the build
// completes in the background for the next caller.
func DecodedMezzanine(ctx context.Context, w Workload, opt DecoderOptions) ([]*Frame, []byte, error) {
	return core.DecodedMezzanine(ctx, w, opt)
}

// ReplayTrace re-drives a recorded event buffer into a fresh machine of the
// given configuration and returns its raw counters — the decode half of a
// transcode at replay speed.
func ReplayTrace(events []byte, cfg Config) (*MachineResult, error) {
	m := uarch.NewMachine(cfg, trace.NewImage(nil))
	if err := trace.Replay(events, m); err != nil {
		return nil, err
	}
	return m.Result(), nil
}

// EventBuf is a parsed trace: the fixed-width event form of a recorded
// buffer, decoded once and replayable into any number of machines.
type EventBuf = trace.EventBuf

// ParseTrace decodes a recorded event buffer into its parsed form.
func ParseTrace(events []byte) (*EventBuf, error) {
	return trace.Parse(events)
}

// ReplayParsedTrace fans a parsed trace into a fresh machine of the given
// configuration via the devirtualized event loop and returns its raw
// counters — bit-identical to ReplayTrace on the buffer the EventBuf was
// parsed from, minus the per-machine decode cost.
func ReplayParsedTrace(b *EventBuf, cfg Config) *MachineResult {
	m := uarch.NewMachine(cfg, trace.NewImage(nil))
	m.ReplayEvents(b)
	return m.Result()
}

// ReplayTraceMulti replays one recorded buffer into a fresh machine of
// every given configuration, decoding each event exactly once, and
// returns the counters in configuration order.
func ReplayTraceMulti(events []byte, cfgs ...Config) ([]*MachineResult, error) {
	b, err := trace.Parse(events)
	if err != nil {
		return nil, err
	}
	out := make([]*MachineResult, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = ReplayParsedTrace(b, cfg)
	}
	return out, nil
}

// ParsedDecodeTrace returns the cached parsed form of a workload's
// recorded decode trace (built on first use). The returned buffer is
// shared cache state and must be treated as read-only.
func ParsedDecodeTrace(ctx context.Context, w Workload, opt DecoderOptions) (*EventBuf, error) {
	return core.ParsedDecodeTrace(ctx, w, opt)
}

// SweepPresets profiles the presets at fixed crf/refs (Figure 6).
func SweepPresets(ctx context.Context, w Workload, cfg Config, presets []Preset, crf, refs int) Points {
	return core.SweepPresets(ctx, w, cfg, presets, crf, refs)
}

// SweepVideos profiles one setting across videos (Figure 7).
func SweepVideos(ctx context.Context, videos []string, frames, scale int, base Options, cfg Config) Points {
	return core.SweepVideos(ctx, videos, frames, scale, base, cfg)
}

// --- compiler optimization studies ---------------------------------------------

// TrainAutoFDO runs a training encode of the workload and returns the
// FDO-optimized code image for use in Job.Image.
func TrainAutoFDO(w Workload, opt Options) (*trace.Image, error) {
	col := autofdo.NewCollector()
	frames, err := synthesizeWorkload(w)
	if err != nil {
		return nil, err
	}
	info, err := vbench.ByName(w.Video)
	if err != nil {
		return nil, err
	}
	enc, err := codec.NewEncoder(frames[0].Width, frames[0].Height, info.FPS, opt, col)
	if err != nil {
		return nil, err
	}
	if _, _, err := enc.EncodeAll(frames); err != nil {
		return nil, err
	}
	return col.Profile().Apply(trace.NewImage(nil), autofdo.Options{}), nil
}

// GraphiteTuning returns the codec loop tuning produced by the paper's
// Graphite flag set.
func GraphiteTuning(f GraphiteFlags) Tuning { return f.Tuning() }

// AllGraphiteFlags is the paper's -floop-interchange
// -ftree-loop-distribution -floop-block combination.
func AllGraphiteFlags() GraphiteFlags { return graphite.All() }

func synthesizeWorkload(w Workload) ([]*Frame, error) {
	info, err := vbench.ByName(w.Video)
	if err != nil {
		return nil, err
	}
	frames := w.Frames
	if frames <= 0 {
		frames = 16
	}
	scale := w.Scale
	if scale <= 0 {
		scale = info.Height / 192
		if scale < 1 {
			scale = 1
		}
	}
	return Synthesize(w.Video, frames, scale)
}

// --- scheduling ------------------------------------------------------------------

// SchedulerTasks returns the Table III tasks.
func SchedulerTasks() []Task { return sched.TableIII() }

// MeasureScheduling simulates every task on every configuration.
func MeasureScheduling(ctx context.Context, tasks []Task, configs []Config, proto Workload) (*sched.Matrix, error) {
	return sched.Measure(ctx, tasks, configs, proto)
}

// SchedulerOutcome is the Figure 9 comparison result.
type SchedulerOutcome = sched.Outcome

// EvaluateSchedulers runs random/smart/best over a measured matrix.
func EvaluateSchedulers(m *sched.Matrix) (*SchedulerOutcome, error) { return m.Evaluate() }

// SchedulerSpeedup returns the percentage speedup of x over base.
func SchedulerSpeedup(base, x []float64) float64 { return sched.Speedup(base, x) }

// --- fleet-scale scheduling (extension of the paper's case study) ---------------

// ServerPool is a heterogeneous fleet of servers (configurations may
// repeat).
type ServerPool = sched.Pool

// GenerateTasks deterministically samples n transcoding tasks across the
// catalog and parameter space.
func GenerateTasks(n int, seed uint64) []Task { return sched.GenerateTasks(n, seed) }

// UniformPool builds a fleet with `each` servers of every configuration.
func UniformPool(configs []Config, each int) ServerPool { return sched.UniformPool(configs, each) }

// AssignPool places tasks one-to-one onto a fleet by characterization
// affinity, generalizing the paper's smart scheduler. It fails when the
// pool has fewer servers than there are tasks.
func AssignPool(tasks []Task, baselineReports []*Report, pool ServerPool) ([]int, error) {
	return sched.AssignPool(tasks, baselineReports, pool)
}
