#!/usr/bin/env bash
# benchgate.sh — the perf-regression gate: run the core benchmarks (via
# bench.sh) and compare them against the committed BENCH_core.json with a
# ±10% ns/op and ±20% allocs/op tolerance. Exits nonzero when any benchmark
# regressed, when a baseline benchmark vanished, or when either file is a
# partial run.
#
#   ./scripts/benchgate.sh                 # run benchmarks, then gate
#   ./scripts/benchgate.sh new.json        # gate an existing result file
#   TOL=0.05 ./scripts/benchgate.sh        # tighter time tolerance
#   ALLOC_TOL=0.05 ./scripts/benchgate.sh  # tighter allocation tolerance
set -euo pipefail
cd "$(dirname "$0")/.."

TOL="${TOL:-0.10}"
ALLOC_TOL="${ALLOC_TOL:-0.20}"
BASE="${BASE:-BENCH_core.json}"

if [ $# -ge 1 ]; then
	NEW="$1"
else
	NEW="$(mktemp)"
	trap 'rm -f "$NEW"' EXIT
	# bench.sh prints its own progress; keep it on stderr so this script's
	# stdout is only the gate verdict.
	OUT="$NEW" ./scripts/bench.sh >&2
fi

go run ./cmd/benchgate -base "$BASE" -new "$NEW" -tol "$TOL" -alloc-tol "$ALLOC_TOL"
