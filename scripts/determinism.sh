#!/usr/bin/env bash
# determinism.sh — the byte-identical gates.
#
# CSV: run cmd/sweep twice on a tiny 2x2 crf×refs grid over the smallest
# proxy in the vbench catalog (presentation: 1080p source, entropy 0.2,
# ~480x270 proxy) and cmp the outputs. Each run is a fresh process, so
# every cache is cold both times; any nondeterminism in the simulator, the
# worker pool's completion order, or the sweep's row ordering shows up as
# a byte diff. The second run adds -workers 4, so the same cmp also gates
# the parallel encoder's byte-identical promise end to end (simulated
# profile included).
#
# Segment stitch: for each of 1/2/4 segments, encode the same clip twice —
# once serially (the reference: fresh encoder per segment, one shared trace
# sink) and once with fully independent segment encoders and trace
# recorders run in reverse order, stitched afterwards — and cmp both the
# bitstreams AND the instrumentation traces byte-for-byte. The 1-segment
# serial run must also equal the plain un-segmented encode, closing the
# chain back to EncodeAll — the tentpole contract of the segment-parallel
# transcode path. (A 2-segment encode is intentionally a different
# bitstream than a whole-clip encode: every segment opens a closed GOP.)
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

args=(-mode crf-refs -video presentation -frames 4 -crfs 23,33 -refs 1,2)

go run ./cmd/sweep "${args[@]}" >"$tmp/a.csv"
go run ./cmd/sweep "${args[@]}" -workers 4 >"$tmp/b.csv"

cmp "$tmp/a.csv" "$tmp/b.csv"
echo "determinism ok: serial and 4-worker cold-cache sweeps produced byte-identical CSV ($(wc -c <"$tmp/a.csv") bytes)"

# Parsed vs streaming replay: the default sweep fans every simulated replay
# out from one pre-parsed event slab; -no-parse-cache streams the raw
# varint trace instead. The fast path's byte-identical promise (pinned
# in-process by TestParsedRunEquivalence) is gated here end to end.
go run ./cmd/sweep "${args[@]}" -no-parse-cache >"$tmp/c.csv"
cmp "$tmp/a.csv" "$tmp/c.csv"
echo "determinism ok: parsed-slab and streaming-replay sweeps produced byte-identical CSV"

go build -o "$tmp/transcode" ./cmd/transcode
enc=(-video desktop -frames 8 -scale 8 -crf 28)

"$tmp/transcode" "${enc[@]}" -o "$tmp/plain.rvc" >/dev/null

for parts in 1 2 4; do
	"$tmp/transcode" "${enc[@]}" -segments "$parts" \
		-o "$tmp/serial$parts.rvc" -trace-out "$tmp/serial$parts.trace" >/dev/null
	"$tmp/transcode" "${enc[@]}" -segments "$parts" -independent \
		-o "$tmp/split$parts.rvc" -trace-out "$tmp/split$parts.trace" >/dev/null
	cmp "$tmp/serial$parts.rvc" "$tmp/split$parts.rvc"
	cmp "$tmp/serial$parts.trace" "$tmp/split$parts.trace"
done
cmp "$tmp/plain.rvc" "$tmp/serial1.rvc"
echo "determinism ok: 1/2/4-segment independent encodes stitched byte-identical bitstreams and traces ($(wc -c <"$tmp/serial4.rvc") + $(wc -c <"$tmp/serial4.trace") bytes at 4 segments)"
