#!/usr/bin/env bash
# determinism.sh — the byte-identical-CSV gate: run cmd/sweep twice on a
# tiny 2x2 crf×refs grid over the smallest proxy in the vbench catalog
# (presentation: 1080p source, entropy 0.2, ~480x270 proxy) and cmp the
# outputs. Each run is a fresh process, so every cache is cold both times;
# any nondeterminism in the simulator, the worker pool's completion order,
# or the sweep's row ordering shows up as a byte diff. The second run adds
# -workers 4, so the same cmp also gates the parallel encoder's
# byte-identical promise end to end (simulated profile included).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

args=(-mode crf-refs -video presentation -frames 4 -crfs 23,33 -refs 1,2)

go run ./cmd/sweep "${args[@]}" >"$tmp/a.csv"
go run ./cmd/sweep "${args[@]}" -workers 4 >"$tmp/b.csv"

cmp "$tmp/a.csv" "$tmp/b.csv"
echo "determinism ok: serial and 4-worker cold-cache sweeps produced byte-identical CSV ($(wc -c <"$tmp/a.csv") bytes)"
