#!/bin/sh
# ci.sh — the tier-1 gate: format, vet, build, full tests, and the race
# detector over the packages with real concurrency (the exec worker pool,
# the sweep engine and singleflight caches in core, the recorder/replay
# layer in trace).
set -eux
cd "$(dirname "$0")/.."

# gofmt -l prints offending files and exits 0, so fail on any output.
test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test ./...
# Fast race gates first: the execution engine is pure concurrency and races
# there invalidate every sweep, so surface them before the long run below.
go test -race ./internal/exec/...
go test -race -run 'TestSweepCancel|TestSweepPreCanceled|TestFlightCacheCancelDetach' ./internal/core/...
# The race detector slows the simulator ~10x and internal/core's probe
# tests each run multiple full transcodes, so the default 10m per-package
# timeout is not enough on small machines.
go test -race -timeout 3600s ./internal/core/... ./internal/trace/...
