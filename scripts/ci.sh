#!/usr/bin/env bash
# ci.sh — the tier-1 gate: format, vet, build, full tests, and the race
# detector over the packages with real concurrency (the exec worker pool,
# the obs metrics registry, the sweep engine and singleflight caches in
# core, the recorder/replay layer in trace).
#
# bash (not sh): `dirname "$0"` + cd keeps relative invocation working,
# and pipefail keeps a failure on the left of any pipe fatal.
set -euxo pipefail
cd "$(dirname "$0")/.."

# gofmt -l prints offending files and exits 0, so fail on any output. The
# expansion stays quoted end-to-end: a filename with spaces is one line of
# output, not word-split fragments that could collapse to an empty test.
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	printf 'gofmt needed on:\n%s\n' "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test ./...
# Fast race gates first: the execution engine and the metrics registry are
# pure concurrency — races there invalidate every sweep and every reported
# number — so surface them before the long run below. The admission queue
# and serving layer join the list: their exactly-once guarantee (no job
# lost or double-executed under concurrent submit/dispatch/cancel) only
# means something under the race detector.
go test -race ./internal/exec/... ./internal/obs/... ./internal/queue/...
go test -race ./internal/serve/... ./internal/worker/...
go test -race -run 'TestSweepCancel|TestSweepPreCanceled|TestFlightCacheCancelDetach' ./internal/core/...
# The race detector slows the simulator ~10x and internal/core's probe
# tests each run multiple full transcodes, so the default 10m per-package
# timeout is not enough on small machines.
go test -race -timeout 3600s ./internal/core/... ./internal/trace/...
