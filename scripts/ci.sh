#!/bin/sh
# ci.sh — the tier-1 gate: vet, build, full tests, and the race detector
# over the packages with real concurrency (the sweep pool and the
# singleflight caches in core, the recorder/replay layer in trace).
set -eux
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
# The race detector slows the simulator ~10x and internal/core's probe
# tests each run multiple full transcodes, so the default 10m per-package
# timeout is not enough on small machines.
go test -race -timeout 3600s ./internal/core/... ./internal/trace/...
