#!/usr/bin/env bash
# serve_smoke.sh — end-to-end gate for the online serving layer: start
# cmd/serve on an ephemeral-ish port with a small workload shape, drive it
# with cmd/loadgen, and rely on loadgen's own hard assertions (exit 1 on
# any lost job, any failed job, or a server /metrics snapshot missing the
# queue-depth gauge / sojourn histograms). Also greps the serve drain line
# to confirm the graceful-shutdown path settles every job.
#
#   ./scripts/serve_smoke.sh            # default: 50 jobs at 100/s
#   N=200 RATE=500 ./scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

N="${N:-50}"
RATE="${RATE:-100}"
ADDR="${ADDR:-localhost:18080}"
LOG="$(mktemp)"

go build -o /tmp/repro-serve ./cmd/serve
go build -o /tmp/repro-loadgen ./cmd/loadgen

# Small frames/scale keep a smoke job to a few milliseconds of simulation;
# -warm all fills the cost model so placements exercise the smart path.
/tmp/repro-serve -addr "$ADDR" -frames 4 -scale 16 -warm all >"$LOG" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

# Wait for the API to come up (warming runs first).
for _ in $(seq 1 100); do
	if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve exited before becoming healthy:" >&2
		cat "$LOG" >&2
		exit 1
	fi
	sleep 0.3
done

/tmp/repro-loadgen -addr "$ADDR" -n "$N" -rate "$RATE" -seed 1 -timeout 120s

# Graceful drain: SIGTERM must settle every admitted job and print totals.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
if ! grep -q 'serve: done' "$LOG"; then
	echo "serve did not report a clean drain:" >&2
	cat "$LOG" >&2
	exit 1
fi
grep 'serve: done' "$LOG" >&2
echo "serve smoke ok: $N jobs, zero lost"
