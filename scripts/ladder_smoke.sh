#!/usr/bin/env bash
# ladder_smoke.sh — end-to-end gate for the segment/ladder job graph
# (DESIGN.md §12): start cmd/serve as a fleet orchestrator, join two
# cmd/worker processes, drive segmented ABR-ladder jobs (every submission
# fans out into rung × segment parts that are leased and placed
# independently), kill -9 one worker while it holds a segment part, and
# prove recovery happens at part granularity: only the segments the dead
# worker held are requeued (attempts > 1), their sibling parts under the
# same parent keep attempts == 1, and zero parts are lost — loadgen exits 1
# if any part is missing, unfinished, or if the server's part ledger
# (serve_parts_submitted vs serve_parts_completed) does not balance.
#
#   ./scripts/ladder_smoke.sh            # default: 4 ladder jobs (16 parts)
#   N=8 RATE=50 ./scripts/ladder_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

N="${N:-4}"
RATE="${RATE:-20}"
SEGMENTS="${SEGMENTS:-2}"
LADDER="${LADDER:-23,43}"
ADDR="${ADDR:-localhost:18082}"
LOG="$(mktemp)"
W1LOG="$(mktemp)"
W2LOG="$(mktemp)"
LOADOUT="$(mktemp)"

go build -o /tmp/repro-serve ./cmd/serve
go build -o /tmp/repro-worker ./cmd/worker
go build -o /tmp/repro-loadgen ./cmd/loadgen

cleanup() {
	kill "$SERVE_PID" "$W1_PID" 2>/dev/null || true
	kill -9 "$W2_PID" 2>/dev/null || true
	rm -f "$LOG" "$W1LOG" "$W2LOG" "$LOADOUT"
}

# Short lease TTL so the killed worker's parts are reclaimed within the
# smoke budget; -warm all fills the cost model so placement runs smart.
/tmp/repro-serve -addr "$ADDR" -fleet -lease-ttl 1s -poll-wait 2s \
	-frames 4 -scale 16 -warm all >"$LOG" 2>&1 &
SERVE_PID=$!
W1_PID=""
W2_PID=""
trap cleanup EXIT

for _ in $(seq 1 100); do
	if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve exited before becoming healthy:" >&2
		cat "$LOG" >&2
		exit 1
	fi
	sleep 0.3
done

# w1 survives; w2 pads every part to 5s so it is guaranteed to be holding
# a segment lease when we shoot it.
/tmp/repro-worker -orchestrator "$ADDR" -id w1 -config baseline \
	-heartbeat 200ms >"$W1LOG" 2>&1 &
W1_PID=$!
/tmp/repro-worker -orchestrator "$ADDR" -id w2 -config fe_op \
	-heartbeat 200ms -min-job 5s >"$W2LOG" 2>&1 &
W2_PID=$!

for _ in $(seq 1 50); do
	if curl -sf "http://$ADDR/healthz" | grep -q '"pool_size": *2'; then
		break
	fi
	sleep 0.2
done
if ! curl -sf "http://$ADDR/healthz" | grep -q '"pool_size": *2'; then
	echo "workers never registered:" >&2
	curl -sf "http://$ADDR/healthz" >&2 || true
	exit 1
fi

/tmp/repro-loadgen -target "http://$ADDR" -n "$N" -rate "$RATE" -seed 1 \
	-segments "$SEGMENTS" -ladder "$LADDER" -timeout 180s >"$LOADOUT" &
LOAD_PID=$!

# Wait until w2 is actually holding a part lease, then kill -9 it.
BUSY=0
for _ in $(seq 1 200); do
	if curl -sf "http://$ADDR/metrics" | grep -q '"fleet_worker_busy{worker=w2}": *1'; then
		BUSY=1
		break
	fi
	sleep 0.1
done
if [ "$BUSY" != 1 ]; then
	echo "w2 never picked up a segment part; cannot exercise crash recovery" >&2
	exit 1
fi
kill -9 "$W2_PID"
wait "$W2_PID" 2>/dev/null || true # reap quietly
echo "ladder smoke: killed w2 mid-segment, waiting for part reassignment" >&2

# loadgen's hard assertions: every parent done, every part done, the part
# ledger balanced, and the fan-out/stitch histograms published.
wait "$LOAD_PID"
cat "$LOADOUT"

# Per-segment recovery, not whole-job: at least one part was reassigned
# (attempts > 1) AND at least one sibling part of the same parent was not
# re-run — a whole-job requeue would bump every sibling's attempts.
read -r REASSIGNED UNTOUCHED < <(
	awk '/^loadgen: parts:/ {print $5, $7}' "$LOADOUT"
)
if [ -z "${REASSIGNED:-}" ] || [ "$REASSIGNED" -lt 1 ]; then
	echo "no segment part was reassigned — crash recovery never ran" >&2
	exit 1
fi
if [ -z "${UNTOUCHED:-}" ] || [ "$UNTOUCHED" -lt 1 ]; then
	echo "every sibling of a reassigned part re-ran — recovery was not per-segment" >&2
	exit 1
fi

# The fan-out really was rung x segment: N parents, each expanding into
# (ladder rungs x segments) parts, every one submitted exactly once.
# (Snapshot /metrics to a file: grep -q on a live curl pipe races SIGPIPE
# under pipefail.)
METRICS="$(mktemp)"
curl -sf "http://$ADDR/metrics" >"$METRICS"
RUNGS=$(echo "$LADDER" | awk -F, '{print NF}')
WANT_PARTS=$((N * RUNGS * SEGMENTS))
if ! grep -q "\"serve_parts_submitted\": *$WANT_PARTS\b" "$METRICS"; then
	echo "part count mismatch (want $WANT_PARTS):" >&2
	grep serve_parts "$METRICS" >&2 || true
	rm -f "$METRICS"
	exit 1
fi
if ! grep -q '"fleet_lease_reassigned": *[1-9]' "$METRICS"; then
	echo "no lease was reassigned — crash recovery path never ran:" >&2
	rm -f "$METRICS"
	exit 1
fi
rm -f "$METRICS"

# Graceful drain: SIGTERM must settle every admitted job and print totals.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
if ! grep -q 'serve: done' "$LOG"; then
	echo "serve did not report a clean drain:" >&2
	cat "$LOG" >&2
	exit 1
fi
grep 'serve: done' "$LOG" >&2
echo "ladder smoke ok: $N ladder jobs ($WANT_PARTS parts), one worker killed mid-segment, $REASSIGNED parts reassigned, $UNTOUCHED siblings untouched, zero lost"
