#!/usr/bin/env bash
# spot_smoke.sh — end-to-end gate for the heterogeneous fleet economics
# (DESIGN.md §14): start cmd/serve as a fleet orchestrator under the cost
# objective, join one on-demand software worker and one spot accelerator,
# drive segmented ladder jobs with deadlines and a per-job budget, then
# preempt the spot worker (kill -9) while it holds a segment part.
# Recovery must be loss-free and minimal: only the preempted worker's
# parts are re-attempted (attempts > 1), sibling parts stay at one
# attempt, and the run fails if any part is lost or unfinished. On top of
# the ladder checks this gate asserts the economic surface: both workers'
# backend/price/spot capability shows on /healthz, the cost ledger
# balances between client and server, the mean $ per job stays under
# -budget, and the cost counters are live on /metrics.
#
#   ./scripts/spot_smoke.sh            # default: 4 ladder jobs (16 parts)
#   N=8 RATE=50 ./scripts/spot_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

N="${N:-4}"
RATE="${RATE:-20}"
SEGMENTS="${SEGMENTS:-2}"
LADDER="${LADDER:-23,43}"
DEADLINE="${DEADLINE:-1}"   # simulated seconds; generous for the tiny proxy
BUDGET="${BUDGET:-0.01}"    # cents per job; tiny-proxy jobs cost micro-cents
ADDR="${ADDR:-localhost:18083}"
LOG="$(mktemp)"
W1LOG="$(mktemp)"
W2LOG="$(mktemp)"
LOADOUT="$(mktemp)"

go build -o /tmp/repro-serve ./cmd/serve
go build -o /tmp/repro-worker ./cmd/worker
go build -o /tmp/repro-loadgen ./cmd/loadgen

cleanup() {
	kill "$SERVE_PID" "$W1_PID" 2>/dev/null || true
	kill -9 "$W2_PID" 2>/dev/null || true
	rm -f "$LOG" "$W1LOG" "$W2LOG" "$LOADOUT"
}

# Short lease TTL so the preempted spot worker's parts are reclaimed within
# the smoke budget; -warm all fills the cost model so admission can price
# deadlines and placement can price the cost matrix.
/tmp/repro-serve -addr "$ADDR" -fleet -objective cost -lease-ttl 1s \
	-poll-wait 2s -frames 4 -scale 16 -warm all >"$LOG" 2>&1 &
SERVE_PID=$!
W1_PID=""
W2_PID=""
trap cleanup EXIT

for _ in $(seq 1 100); do
	if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve exited before becoming healthy:" >&2
		cat "$LOG" >&2
		exit 1
	fi
	sleep 0.3
done

# w1 is the on-demand software survivor; w2 is spot accelerator capacity
# that pads every part to 5s so it is guaranteed to be holding a segment
# lease when the "spot reclaim" (kill -9) lands.
/tmp/repro-worker -orchestrator "$ADDR" -id w1 -config baseline \
	-heartbeat 200ms >"$W1LOG" 2>&1 &
W1_PID=$!
/tmp/repro-worker -orchestrator "$ADDR" -id w2 -backend accel -spot \
	-heartbeat 200ms -min-job 5s >"$W2LOG" 2>&1 &
W2_PID=$!

for _ in $(seq 1 50); do
	if curl -sf "http://$ADDR/healthz" | grep -q '"pool_size": *2'; then
		break
	fi
	sleep 0.2
done
HEALTH="$(mktemp)"
curl -sf "http://$ADDR/healthz" >"$HEALTH" || true
if ! grep -q '"pool_size": *2' "$HEALTH"; then
	echo "workers never registered:" >&2
	cat "$HEALTH" >&2
	rm -f "$HEALTH"
	exit 1
fi
# The spot accelerator's capability (backend class, spot flag, non-zero
# hourly price) must be visible on the health surface before placement.
if ! grep -q '"backend": *"accel"' "$HEALTH" || ! grep -q '"spot": *true' "$HEALTH"; then
	echo "spot accelerator capability missing from /healthz:" >&2
	cat "$HEALTH" >&2
	rm -f "$HEALTH"
	exit 1
fi
rm -f "$HEALTH"

/tmp/repro-loadgen -target "http://$ADDR" -n "$N" -rate "$RATE" -seed 1 \
	-segments "$SEGMENTS" -ladder "$LADDER" -deadline "$DEADLINE" \
	-budget "$BUDGET" -timeout 180s >"$LOADOUT" &
LOAD_PID=$!

# Wait until the spot worker is actually holding a part lease, then
# preempt it the way a cloud provider does: no warning, no disclaim.
BUSY=0
for _ in $(seq 1 200); do
	if curl -sf "http://$ADDR/metrics" | grep -q '"fleet_worker_busy{worker=w2}": *1'; then
		BUSY=1
		break
	fi
	sleep 0.1
done
if [ "$BUSY" != 1 ]; then
	echo "spot worker never picked up a part; cannot exercise preemption" >&2
	exit 1
fi
kill -9 "$W2_PID"
wait "$W2_PID" 2>/dev/null || true # reap quietly
echo "spot smoke: preempted w2 mid-ladder, waiting for part reassignment" >&2

# loadgen's hard assertions: every parent done, every part done, the part
# ledger balanced, client-vs-server cost ledger consistent, mean cost
# under budget.
wait "$LOAD_PID"
cat "$LOADOUT"

# Preemption recovery is per-part, not per-job: at least one part was
# re-attempted and at least one sibling was not.
read -r REASSIGNED UNTOUCHED < <(
	awk '/^loadgen: parts:/ {print $5, $7}' "$LOADOUT"
)
if [ -z "${REASSIGNED:-}" ] || [ "$REASSIGNED" -lt 1 ]; then
	echo "no segment part was reassigned — preemption recovery never ran" >&2
	exit 1
fi
if [ -z "${UNTOUCHED:-}" ] || [ "$UNTOUCHED" -lt 1 ]; then
	echo "every sibling of a reassigned part re-ran — recovery was not per-part" >&2
	exit 1
fi
if ! grep -q '^loadgen: economics:' "$LOADOUT"; then
	echo "loadgen printed no economics line" >&2
	exit 1
fi

# Metrics surface: all parts submitted, the preempted lease reassigned,
# the cost ledger counting, and settled work attributed to a backend
# class. (Snapshot /metrics to a file: grep -q on a live curl pipe races
# SIGPIPE under pipefail.)
METRICS="$(mktemp)"
curl -sf "http://$ADDR/metrics" >"$METRICS"
RUNGS=$(echo "$LADDER" | awk -F, '{print NF}')
WANT_PARTS=$((N * RUNGS * SEGMENTS))
if ! grep -q "\"serve_parts_submitted\": *$WANT_PARTS\b" "$METRICS"; then
	echo "part count mismatch (want $WANT_PARTS):" >&2
	grep serve_parts "$METRICS" >&2 || true
	rm -f "$METRICS"
	exit 1
fi
if ! grep -q '"fleet_lease_reassigned": *[1-9]' "$METRICS"; then
	echo "no lease was reassigned — preemption recovery path never ran" >&2
	rm -f "$METRICS"
	exit 1
fi
if ! grep -q '"serve_cost_microcents": *[1-9]' "$METRICS"; then
	echo "cost ledger counter never moved:" >&2
	grep serve_cost "$METRICS" >&2 || true
	rm -f "$METRICS"
	exit 1
fi
if ! grep -q '"serve_backend_jobs{backend=baseline}": *[1-9]' "$METRICS"; then
	echo "no settled work attributed to the surviving software class:" >&2
	grep serve_backend "$METRICS" >&2 || true
	rm -f "$METRICS"
	exit 1
fi
rm -f "$METRICS"

# Graceful drain: SIGTERM must settle every admitted job and print totals
# (including the cost and deadline-miss tallies).
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
if ! grep -q 'serve: done' "$LOG"; then
	echo "serve did not report a clean drain:" >&2
	cat "$LOG" >&2
	exit 1
fi
grep 'serve: done' "$LOG" >&2
echo "spot smoke ok: $N ladder jobs ($WANT_PARTS parts), spot accelerator preempted mid-ladder, $REASSIGNED parts reassigned, $UNTOUCHED siblings untouched, zero lost, ledger balanced"
