#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end gate for the distributed fleet (DESIGN.md
# §11): start cmd/serve as an orchestrator with a short lease TTL, join two
# cmd/worker processes, kill -9 one of them while it holds a job, and prove
# the lease machinery recovers — the orphaned job must be requeued onto the
# survivor and loadgen must see every admitted job reach a terminal state
# (loadgen exits 1 on any lost or failed job, so recovery is a hard gate,
# not a log grep). Afterwards the /metrics snapshot must show at least one
# reassigned lease, and SIGTERM must drain the orchestrator cleanly.
#
#   ./scripts/fleet_smoke.sh            # default: 30 jobs at 100/s
#   N=100 RATE=300 ./scripts/fleet_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

N="${N:-30}"
RATE="${RATE:-100}"
ADDR="${ADDR:-localhost:18081}"
LOG="$(mktemp)"
W1LOG="$(mktemp)"
W2LOG="$(mktemp)"

go build -o /tmp/repro-serve ./cmd/serve
go build -o /tmp/repro-worker ./cmd/worker
go build -o /tmp/repro-loadgen ./cmd/loadgen

cleanup() {
	kill "$SERVE_PID" "$W1_PID" 2>/dev/null || true
	kill -9 "$W2_PID" 2>/dev/null || true
	rm -f "$LOG" "$W1LOG" "$W2LOG"
}

# Short lease TTL so the killed worker's job is reclaimed within the smoke
# budget; -warm all fills the cost model so placement runs the smart path.
/tmp/repro-serve -addr "$ADDR" -fleet -lease-ttl 1s -poll-wait 2s \
	-frames 4 -scale 16 -warm all >"$LOG" 2>&1 &
SERVE_PID=$!
W1_PID=""
W2_PID=""
trap cleanup EXIT

# Wait for the API to come up (warming runs first).
for _ in $(seq 1 100); do
	if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
		break
	fi
	if ! kill -0 "$SERVE_PID" 2>/dev/null; then
		echo "serve exited before becoming healthy:" >&2
		cat "$LOG" >&2
		exit 1
	fi
	sleep 0.3
done

# w1 survives; w2 pads every job to 5s so it is guaranteed to be holding a
# lease when we shoot it (a smoke job is otherwise a few milliseconds).
/tmp/repro-worker -orchestrator "$ADDR" -id w1 -config baseline \
	-heartbeat 200ms >"$W1LOG" 2>&1 &
W1_PID=$!
/tmp/repro-worker -orchestrator "$ADDR" -id w2 -config fe_op \
	-heartbeat 200ms -min-job 5s >"$W2LOG" 2>&1 &
W2_PID=$!

# Both workers registered and idle-parked before load arrives.
for _ in $(seq 1 50); do
	if curl -sf "http://$ADDR/healthz" | grep -q '"pool_size": *2'; then
		break
	fi
	sleep 0.2
done
if ! curl -sf "http://$ADDR/healthz" | grep -q '"pool_size": *2'; then
	echo "workers never registered:" >&2
	curl -sf "http://$ADDR/healthz" >&2 || true
	exit 1
fi

/tmp/repro-loadgen -target "http://$ADDR" -n "$N" -rate "$RATE" -seed 1 -timeout 120s &
LOAD_PID=$!

# Wait until w2 is actually holding a lease, then kill -9 it mid-job.
BUSY=0
for _ in $(seq 1 200); do
	if curl -sf "http://$ADDR/metrics" | grep -q '"fleet_worker_busy{worker=w2}": *1'; then
		BUSY=1
		break
	fi
	sleep 0.1
done
if [ "$BUSY" != 1 ]; then
	echo "w2 never picked up a job; cannot exercise crash recovery" >&2
	exit 1
fi
kill -9 "$W2_PID"
wait "$W2_PID" 2>/dev/null || true # reap quietly
echo "fleet smoke: killed w2 mid-job, waiting for lease reassignment" >&2

# loadgen's own hard assertions: zero lost jobs, zero failed jobs, and the
# /metrics contract (queue-depth gauge + sojourn histograms) present.
wait "$LOAD_PID"

# The recovery path must actually have fired. (Snapshot /metrics to a
# file: grep -q on a live curl pipe races SIGPIPE under pipefail.)
METRICS="$(mktemp)"
curl -sf "http://$ADDR/metrics" >"$METRICS"
if ! grep -q '"fleet_lease_reassigned": *[1-9]' "$METRICS"; then
	echo "no lease was reassigned — crash recovery path never ran:" >&2
	cat "$METRICS" >&2
	rm -f "$METRICS"
	exit 1
fi
rm -f "$METRICS"

# Graceful drain: SIGTERM must settle every admitted job and print totals.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
if ! grep -q 'serve: done' "$LOG"; then
	echo "serve did not report a clean drain:" >&2
	cat "$LOG" >&2
	exit 1
fi
grep 'serve: done' "$LOG" >&2
echo "fleet smoke ok: $N jobs, one worker killed mid-job, zero lost"
