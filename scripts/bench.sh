#!/bin/sh
# bench.sh — run the core replay-cache, shared-analysis and pixel-kernel
# benchmarks and record them in BENCH_core.json as
# [{"name":..., "ns_per_op":..., "allocs_per_op":...}].
#
# The cached/uncached sweep pair is the headline number: the acceptance
# bar is cached >= 1.5x faster than uncached on the reduced 4x4 grid. The
# AnalysisReuse shared/live pair is the per-point claim of the shared
# lookahead artifact and LadderSharedAnalysis prices a whole 3-rung ABR
# ladder reusing one artifact, SAD/SATD/FDCT/TrellisQuant/Deblock/
# IntraPredict pin the SWAR kernels, EncodeParallel pins the wavefront
# encode at 1 and 4 workers, SegmentedEncode prices the 1/2/4-way
# segment-and-stitch split, and Dispatch pins the serving layer's
# per-batch placement overhead.
#
# An interrupted run (Ctrl-C) still writes whatever benchmarks completed,
# with a trailing {"name": "_note", "partial": true} entry so downstream
# consumers never mistake a truncated file for a full record.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2x}"
OUT="${OUT:-BENCH_core.json}"
RAW="$(mktemp)"
PARTIAL=0
trap 'rm -f "$RAW"' EXIT
trap 'PARTIAL=1' INT TERM

go test -run '^$' -bench 'BenchmarkDecodeReplay|BenchmarkSweepCRFRefs|BenchmarkAnalysisReuse|BenchmarkLadderSharedAnalysis|BenchmarkSAD$|BenchmarkSATD$' \
	-benchtime "$BENCHTIME" -benchmem -timeout 1200s . | tee "$RAW" || PARTIAL=1
# The remaining benchmarks live in their own packages; append to the same
# raw stream so the awk pass below records them alongside.
go test -run '^$' -bench 'BenchmarkFDCT|BenchmarkTrellisQuant' \
	-benchtime "$BENCHTIME" -benchmem -timeout 600s ./internal/codec/transform | tee -a "$RAW" || PARTIAL=1
go test -run '^$' -bench 'BenchmarkDeblock|BenchmarkIntraPredict|BenchmarkEncodeParallel|BenchmarkSegmentedEncode' \
	-benchtime "$BENCHTIME" -benchmem -timeout 600s ./internal/codec | tee -a "$RAW" || PARTIAL=1
go test -run '^$' -bench 'BenchmarkDispatch' \
	-benchtime "$BENCHTIME" -benchmem -timeout 600s ./internal/serve | tee -a "$RAW" || PARTIAL=1
trap - INT TERM

awk -v partial="$PARTIAL" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	if (allocs == "") allocs = 0
	rows[++n] = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs)
	if (name == "BenchmarkSweepCRFRefsCached") cached = ns
	if (name == "BenchmarkSweepCRFRefsUncached") uncached = ns
	if (name == "BenchmarkAnalysisReuse/shared") ashared = ns
	if (name == "BenchmarkAnalysisReuse/live") alive = ns
	if (name == "BenchmarkLadderSharedAnalysis/shared") lshared = ns
	if (name == "BenchmarkLadderSharedAnalysis/live") llive = ns
}
END {
	if (partial + 0 != 0)
		rows[++n] = "  {\"name\": \"_note\", \"partial\": true}"
	printf "[\n"
	for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
	printf "]\n"
	if (cached + 0 > 0 && uncached + 0 > 0)
		printf "replay cache speedup: %.2fx\n", uncached / cached > "/dev/stderr"
	if (ashared + 0 > 0 && alive + 0 > 0)
		printf "shared analysis speedup: %.2fx\n", alive / ashared > "/dev/stderr"
	if (lshared + 0 > 0 && llive + 0 > 0)
		printf "ladder shared-analysis speedup: %.2fx\n", llive / lshared > "/dev/stderr"
}
' "$RAW" >"$OUT"

if [ "$PARTIAL" -ne 0 ]; then
	echo "wrote $OUT (PARTIAL: benchmark run was interrupted)" >&2
	exit 130
fi
echo "wrote $OUT"
