#!/bin/sh
# bench.sh — run the core replay-cache, shared-analysis and pixel-kernel
# benchmarks and record them in BENCH_core.json as
# [{"name":..., "ns_per_op":..., "allocs_per_op":...}].
#
# The cached/uncached sweep pair is the headline number: the acceptance
# bar is cached >= 1.5x faster than uncached on the reduced 4x4 grid.
# ReplayParsed/ReplayMulti price the decode-once fan-out: one pre-parsed
# event slab replayed into one machine and into all five Table IV
# configurations. The
# AnalysisReuse shared/live pair is the per-point claim of the shared
# lookahead artifact and LadderSharedAnalysis prices a whole 3-rung ABR
# ladder reusing one artifact, SAD/SATD/FDCT/TrellisQuant/Deblock/
# IntraPredict pin the SWAR kernels, EncodeParallel pins the wavefront
# encode at 1 and 4 workers, SegmentedEncode prices the 1/2/4-way
# segment-and-stitch split, and the Dispatch pair pins the serving
# layer's per-batch placement overhead — the homogeneous fleet-seconds
# path and the heterogeneous cost-matrix path (DispatchHeterogeneous).
#
# An interrupted run (Ctrl-C) still writes whatever benchmarks completed,
# with a trailing {"name": "_note", "partial": true} entry so downstream
# consumers never mistake a truncated file for a full record.
set -eu
cd "$(dirname "$0")/.."

# Time-based by default so every benchmark self-scales its iteration
# count: nanosecond kernels get ~10^5 iterations instead of the 2-3 a
# fixed "2x" would give them (which is timer-granularity noise and made
# the nightly gate flap), while the 100ms+ sweeps still run a few times.
# The whole suite runs BENCHCOUNT times and the recorded figure is the
# per-benchmark minimum — the classic noise-free estimate. Repeating at
# the suite level (not -count, which reruns back-to-back) spreads one
# benchmark's repetitions minutes apart, so the minute-scale slowdown
# windows shared and virtualized runners exhibit can't poison all of
# them at once.
BENCHTIME="${BENCHTIME:-1s}"
BENCHCOUNT="${BENCHCOUNT:-3}"
OUT="${OUT:-BENCH_core.json}"
RAW="$(mktemp)"
PARTIAL=0
trap 'rm -f "$RAW"' EXIT
trap 'PARTIAL=1' INT TERM

: >"$RAW"
rep=1
while [ "$rep" -le "$BENCHCOUNT" ]; do
	go test -run '^$' -bench 'BenchmarkDecodeReplay|BenchmarkReplayParsed|BenchmarkReplayMulti|BenchmarkSweepCRFRefs|BenchmarkAnalysisReuse|BenchmarkLadderSharedAnalysis|BenchmarkSAD$|BenchmarkSATD$' \
		-benchtime "$BENCHTIME" -benchmem -timeout 1200s . | tee -a "$RAW" || PARTIAL=1
	# The remaining benchmarks live in their own packages; append to the
	# same raw stream so the awk pass below records them alongside.
	go test -run '^$' -bench 'BenchmarkFDCT|BenchmarkTrellisQuant' \
		-benchtime "$BENCHTIME" -benchmem -timeout 600s ./internal/codec/transform | tee -a "$RAW" || PARTIAL=1
	go test -run '^$' -bench 'BenchmarkDeblock|BenchmarkIntraPredict|BenchmarkEncodeParallel|BenchmarkSegmentedEncode' \
		-benchtime "$BENCHTIME" -benchmem -timeout 600s ./internal/codec | tee -a "$RAW" || PARTIAL=1
	go test -run '^$' -bench 'BenchmarkDispatch' \
		-benchtime "$BENCHTIME" -benchmem -timeout 600s ./internal/serve | tee -a "$RAW" || PARTIAL=1
	rep=$((rep + 1))
done
trap - INT TERM

awk -v partial="$PARTIAL" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op") ns = $(i - 1)
		if ($i == "allocs/op") allocs = $(i - 1)
	}
	if (ns == "") next
	if (allocs == "") allocs = 0
	# Best of -count repetitions: keep the minimum ns/op per benchmark
	# (and the allocs figure from that same repetition).
	if (!(name in best) || ns + 0 < best[name] + 0) {
		if (!(name in best)) order[++n] = name
		best[name] = ns
		balloc[name] = allocs
	}
}
END {
	printf "[\n"
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s},\n", name, best[name], balloc[name]
	}
	if (partial + 0 != 0)
		printf "  {\"name\": \"_note\", \"partial\": true},\n"
	printf "  {\"name\": \"_meta\", \"estimator\": \"min\"}\n"
	printf "]\n"
	cached = best["BenchmarkSweepCRFRefsCached"]
	uncached = best["BenchmarkSweepCRFRefsUncached"]
	ashared = best["BenchmarkAnalysisReuse/shared"]
	alive = best["BenchmarkAnalysisReuse/live"]
	lshared = best["BenchmarkLadderSharedAnalysis/shared"]
	llive = best["BenchmarkLadderSharedAnalysis/live"]
	if (cached + 0 > 0 && uncached + 0 > 0)
		printf "replay cache speedup: %.2fx\n", uncached / cached > "/dev/stderr"
	if (ashared + 0 > 0 && alive + 0 > 0)
		printf "shared analysis speedup: %.2fx\n", alive / ashared > "/dev/stderr"
	if (lshared + 0 > 0 && llive + 0 > 0)
		printf "ladder shared-analysis speedup: %.2fx\n", llive / lshared > "/dev/stderr"
}
' "$RAW" >"$OUT"

if [ "$PARTIAL" -ne 0 ]; then
	echo "wrote $OUT (PARTIAL: benchmark run was interrupted)" >&2
	exit 130
fi
echo "wrote $OUT"
